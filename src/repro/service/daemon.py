"""The experiment daemon: ``repro serve``.

A long-running stdlib HTTP server (``ThreadingHTTPServer``) in front of
the sweep engine.  The HTTP surface is versioned under ``/v1`` and
every response body is a ``repro/v1`` envelope
(:mod:`repro.service.envelope`):

==========================================  ================================
``GET  /v1``                                service identity, queue stats,
                                            rate-limit policy
                                            (``service-info``)
``POST /v1/sweeps``                         submit a :class:`~repro.service
                                            .jobs.JobSpec` payload; ``202``
                                            + ``job`` envelope, typed 4xx
                                            on a bad spec, ``429`` +
                                            ``Retry-After`` under rate
                                            limiting or backpressure
``GET  /v1/sweeps``                         every known job (``job-list``)
``GET  /v1/sweeps/{id}``                    one job (``job``)
``GET  /v1/sweeps/{id}/results``            the finished grid
                                            (``sweep-results``; ``409
                                            not-ready`` while running)
``GET  /v1/sweeps/{id}/events``             the job's sweep events as
                                            Server-Sent Events, replayed
                                            from the start and followed
                                            live until the job finishes
==========================================  ================================

Design decisions, in terms of the layers underneath:

* **One worker thread** drains the FIFO queue, so submission order is
  execution order and every job sees the cells of its predecessors in
  the shared content-addressed :class:`~repro.core.resultcache
  .ResultCache` — identical cells across tenants are computed exactly
  once (asserted by ``tests/test_service.py`` with cache-hit
  counters).  Within a job, parallelism is the executor's business:
  the daemon passes its ``--jobs``/``--hosts`` configuration through
  :func:`~repro.core.executors.select_executor`, so serial, local
  pool, and multi-host fleets all serve.
* **Crash recovery is checkpoint-backed.**  Every job is journaled to
  disk on each state change, and every sweep runs under a
  :class:`~repro.core.resilience.CheckpointManifest` next to the
  result cache.  A ``kill -9``'d daemon restarted on the same data
  directory re-enqueues in-flight jobs and recomputes only unfinished
  cells — bitwise-identical to an uninterrupted run.
* **Results are spec-determined bytes.**  ``GET .../results`` builds
  its payload purely from the spec and the result cache (canonical key
  order, no job ids or timestamps inside ``data``), so two jobs with
  the same spec — or the same job before and after a daemon crash —
  fetch byte-identical documents.
* **Events stream from the bus.**  The engine's
  :data:`~repro.obs.bus.SWEEP_EVENTS` are journaled per job by
  :class:`~repro.obs.sinks.SweepEventJournal` and bridged to SSE, so
  dispatch/heartbeat/retry/requeue/host-loss are visible to clients in
  order, and the stream survives a daemon restart (the journal file is
  the stream).
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional

from .._version import __version__
from ..errors import ConfigError, UnknownPlatformError
from ..core.executors import select_executor
from ..core.parallel import ParallelSweepRunner
from ..core.resilience import CheckpointManifest, RetryPolicy, key_str
from ..core.resultcache import ResultCache, result_to_dict, spec_fingerprint
from ..core.sweep import normalize_cell
from ..obs.sinks import SweepEventJournal
from .envelope import (
    dump_envelope,
    error_envelope,
    error_status,
    make_envelope,
)
from .jobs import Job, JobQueue, JobSpec, QueueFullError, RateLimitedError

#: How often pollers (SSE follow loop, worker idle loop) wake up.
POLL_S = 0.05


class ReproService:
    """Everything behind the HTTP surface: queue, worker, result store.

    Separated from the HTTP handler so tests can drive the service
    in-process (submit/run/fetch without sockets) and the handler
    stays a thin codec.
    """

    def __init__(
        self,
        data_dir,
        jobs: Optional[int] = 1,
        hosts=None,
        trace_cache: bool = False,
        max_depth: int = 64,
        rate_per_s: float = 10.0,
        burst: int = 20,
        retries: int = 3,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.cache_dir = self.data_dir / "cache"
        self.events_dir = self.data_dir / "events"
        self.jobs = jobs
        self.hosts = hosts
        self.trace_cache = trace_cache
        self.retries = retries
        self.timeout_s = timeout_s
        self.queue = JobQueue(
            self.data_dir, max_depth=max_depth,
            rate_per_s=rate_per_s, burst=burst,
        )
        self.started_jobs = 0
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        #: The shared multi-tenant result store.  One instance for
        #: reads; each job's runner opens its own handle on the same
        #: directory (hit/miss counters are per-handle, per-job).
        self.cache = ResultCache(self.cache_dir)

    # -- lifecycle ----------------------------------------------------------
    def recover(self) -> List[Job]:
        """Reload the job journal; called once before serving."""
        return self.queue.recover()

    def start_worker(self) -> None:
        self._worker = threading.Thread(
            target=self._work_loop, name="repro-service-worker", daemon=True
        )
        self._worker.start()

    def stop(self) -> None:
        self._stop.set()
        if self._worker is not None:
            self._worker.join(timeout=10)

    def _work_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=POLL_S)
            if job is None:
                continue
            self.run_job(job)

    # -- execution ----------------------------------------------------------
    def journal_path(self, job_id: str) -> Path:
        return self.events_dir / f"{job_id}.jsonl"

    def run_job(self, job: Job) -> None:
        """Run one job's grid through the resilient sweep engine."""
        self.started_jobs += 1
        spec = job.spec
        keys = [normalize_cell(c) for c in spec.cells()]
        try:
            trace_store = None
            if self.trace_cache:
                from ..trace.store import TraceStore

                trace_store = TraceStore(self.cache_dir / "traces")
            runner = ParallelSweepRunner(
                sim=spec.sim(), tpch=spec.tpch(),
                cache=ResultCache(self.cache_dir),
                executor=select_executor(jobs=self.jobs, hosts=self.hosts),
                trace_store=trace_store,
            )
            manifest = CheckpointManifest.open(
                self.cache_dir, keys,
                [spec_fingerprint(runner._spec(k)) for k in keys],
            )
            journal = SweepEventJournal(self.journal_path(job.id))
            report = runner.execute(
                keys,
                policy=RetryPolicy(max_attempts=self.retries),
                timeout_s=self.timeout_s,
                manifest=manifest,
                sinks=[journal],
            )
        except Exception as exc:  # a job must never take the daemon down
            self.queue.finish(job, error=repr(exc))
            return
        payload = report.to_dict()
        payload["cache"] = runner.cache_stats
        payload["trace_sources"] = dict(runner.trace_sources)
        error = None
        if not report.ok:
            error = (
                f"{len(report.failed)} cell(s) quarantined "
                f"(first: {report.failed[0].error})"
            )
        self.queue.finish(job, report=payload, error=error)

    # -- payload builders ---------------------------------------------------
    def service_info(self) -> dict:
        return make_envelope("service-info", {
            "service": "repro",
            "version": __version__,
            "api": ["/v1", "/v1/sweeps"],
            "executor": {
                "jobs": self.jobs,
                "hosts": self.hosts,
                "trace_cache": self.trace_cache,
            },
            "queue": self.queue.stats(),
            "cache": {"entries": len(self.cache)},
            "jobs_started": self.started_jobs,
        })

    def job_envelope(self, job: Job) -> dict:
        data = job.to_dict()
        data.pop("format", None)
        data["links"] = {
            "self": f"/v1/sweeps/{job.id}",
            "results": f"/v1/sweeps/{job.id}/results",
            "events": f"/v1/sweeps/{job.id}/events",
        }
        return make_envelope("job", data)

    def results_envelope(self, job: Job) -> dict:
        """The finished grid, spec-determined: built purely from the
        spec and the shared cache, canonical order, nothing job- or
        time-scoped inside ``data`` — so identical specs fetch
        identical bytes, whoever submitted them and however often the
        daemon restarted in between."""
        spec = job.spec
        runner = ParallelSweepRunner(
            sim=spec.sim(), tpch=spec.tpch(),
            cache=ResultCache(self.cache_dir), executor=None,
        )
        cells: Dict[str, dict] = {}
        missing: List[str] = []
        for key in [normalize_cell(c) for c in spec.cells()]:
            result = runner.cache.get(runner._spec(key))
            if result is None:
                missing.append(key_str(key))
            else:
                cells[key_str(key)] = result_to_dict(result)
        data = {"spec": spec.to_dict(), "cells": cells}
        if missing:
            data["missing"] = missing
        return make_envelope("sweep-results", data)

    # -- submission ---------------------------------------------------------
    def submit(self, tenant: str, payload: dict) -> Job:
        """Validate and admit one submission (raises the taxonomy)."""
        spec = JobSpec.from_payload(payload)
        return self.queue.submit(tenant, spec)


def classify_submit_error(exc: Exception) -> dict:
    """Map the validation/admission taxonomy onto typed error
    envelopes — the HTTP face of the same errors the CLI maps to exit
    code 2."""
    if isinstance(exc, RateLimitedError):
        return error_envelope(
            "rate-limited", str(exc),
            {"tenant": exc.tenant, "retry_after_s": exc.retry_after_s},
        )
    if isinstance(exc, QueueFullError):
        return error_envelope(
            "queue-full", str(exc),
            {"depth": exc.depth, "retry_after_s": exc.retry_after_s},
        )
    if isinstance(exc, UnknownPlatformError):
        detail = {"platform": exc.name, "known": list(exc.known)}
        if exc.suggestion:
            detail["suggestion"] = exc.suggestion
        return error_envelope("unknown-platform", str(exc), detail)
    if isinstance(exc, ConfigError):
        code = "unknown-query" if "unknown query" in str(exc) else "bad-spec"
        return error_envelope(code, str(exc))
    return error_envelope("internal", repr(exc))


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP codec over :class:`ReproService`."""

    #: Set by :func:`make_server`.
    service: ReproService = None  # type: ignore[assignment]
    server_version = f"repro/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------
    def log_message(self, fmt, *args):  # quiet by default
        pass

    def _send_envelope(
        self, status: int, envelope: dict, headers: Optional[dict] = None
    ) -> None:
        body = (dump_envelope(envelope) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_env(self, envelope: dict, headers: Optional[dict] = None):
        self._send_envelope(error_status(envelope), envelope, headers)

    def _not_found(self, what: str) -> None:
        self._send_error_env(error_envelope("not-found", what))

    # -- routes -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        try:
            self._route_get()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        except Exception as exc:  # pragma: no cover - defensive
            try:
                self._send_error_env(error_envelope("internal", repr(exc)))
            except Exception:
                pass

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route_post()
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # pragma: no cover - defensive
            try:
                self._send_error_env(error_envelope("internal", repr(exc)))
            except Exception:
                pass

    def _route_get(self) -> None:
        svc = self.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/v1"):
            self._send_envelope(200, svc.service_info())
            return
        if path == "/v1/sweeps":
            jobs = [svc.job_envelope(j)["data"] for j in svc.queue.jobs()]
            self._send_envelope(200, make_envelope("job-list", {"jobs": jobs}))
            return
        parts = path.strip("/").split("/")
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "sweeps":
            job = svc.queue.get(parts[2])
            if job is None:
                self._not_found(f"no job {parts[2]!r}")
                return
            if len(parts) == 3:
                self._send_envelope(200, svc.job_envelope(job))
                return
            if len(parts) == 4 and parts[3] == "results":
                if job.state not in ("done", "failed"):
                    self._send_error_env(error_envelope(
                        "not-ready",
                        f"job {job.id} is {job.state}; results are served "
                        f"once it finishes",
                        {"state": job.state},
                    ))
                    return
                self._send_envelope(200, svc.results_envelope(job))
                return
            if len(parts) == 4 and parts[3] == "events":
                self._stream_events(job)
                return
        self._not_found(f"no route {path!r}")

    def _route_post(self) -> None:
        svc = self.service
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/sweeps":
            self._send_error_env(
                error_envelope("not-found", f"no POST route {path!r}")
                if path.startswith("/v1")
                else error_envelope("method-not-allowed", f"POST {path}")
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error_env(
                error_envelope("bad-request", f"unreadable body: {exc}")
            )
            return
        tenant = self.headers.get("X-Repro-Tenant", "anonymous")
        try:
            job = svc.submit(tenant, payload)
        except (RateLimitedError, QueueFullError) as exc:
            env = classify_submit_error(exc)
            self._send_error_env(
                env,
                {"Retry-After": str(max(1, int(exc.retry_after_s + 0.999)))},
            )
            return
        except Exception as exc:
            self._send_error_env(classify_submit_error(exc))
            return
        self._send_envelope(202, svc.job_envelope(job))

    # -- SSE ----------------------------------------------------------------
    def _stream_events(self, job: Job) -> None:
        """Serve the job's event journal as Server-Sent Events.

        Replays the journal from the start, then follows it (and the
        job state) until the job reaches a terminal state, closing with
        an ``end`` event that carries the final job document.  Each
        event is ``event: <sweep event name>`` with a ``sweep-event``
        envelope as its data line.
        """
        svc = self.service
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        path = svc.journal_path(job.id)
        offset = 0
        while True:
            records = SweepEventJournal.read(path)
            for record in records[offset:]:
                env = make_envelope("sweep-event", {
                    "job": job.id, **record,
                })
                self.wfile.write(
                    f"event: {record.get('event', 'message')}\n"
                    f"data: {json.dumps(env, sort_keys=True)}\n\n".encode()
                )
            offset = len(records)
            self.wfile.flush()
            current = svc.queue.get(job.id)
            state = current.state if current is not None else "done"
            if state in ("done", "failed"):
                # one final drain so nothing between the last read and
                # the state flip is lost
                records = SweepEventJournal.read(path)
                for record in records[offset:]:
                    env = make_envelope("sweep-event", {
                        "job": job.id, **record,
                    })
                    self.wfile.write(
                        f"event: {record.get('event', 'message')}\n"
                        f"data: {json.dumps(env, sort_keys=True)}\n\n".encode()
                    )
                final = svc.job_envelope(current) if current else {}
                self.wfile.write(
                    f"event: end\ndata: {json.dumps(final, sort_keys=True)}\n\n"
                    .encode()
                )
                self.wfile.flush()
                return
            time.sleep(POLL_S)


def make_server(service: ReproService, bind: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """An HTTP server wired to ``service`` (port 0 = ephemeral)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((bind, port), handler)
    server.daemon_threads = True
    return server


def serve(
    data_dir,
    bind: str = "127.0.0.1",
    port: int = 0,
    announce=print,
    ready: Optional[threading.Event] = None,
    install_signals: bool = True,
    **service_kwargs,
) -> int:
    """Run the daemon until SIGTERM/SIGINT: the ``repro serve`` body.

    Recovers journaled jobs, starts the worker thread, binds the HTTP
    server, writes a discovery file (``<data_dir>/service.json`` with
    the bound url and pid) and serves forever.  Returns the process
    exit code.
    """
    service = ReproService(data_dir, **service_kwargs)
    recovered = service.recover()
    server = make_server(service, bind, port)
    host, bound_port = server.server_address[:2]
    url = f"http://{host}:{bound_port}"
    discovery = Path(data_dir) / "service.json"
    discovery.parent.mkdir(parents=True, exist_ok=True)
    import os

    discovery.write_text(json.dumps({
        "url": url, "pid": os.getpid(), "bind": bind, "port": bound_port,
    }, sort_keys=True))
    service.start_worker()
    if recovered:
        announce(
            f"recovered {len(recovered)} unfinished job(s) from "
            f"{service.queue.jobs_dir}"
        )
    announce(f"repro service listening on {url} (data: {service.data_dir})")

    stopping = threading.Event()

    def shutdown(*_args):
        if not stopping.is_set():
            stopping.set()
            threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, shutdown)
        signal.signal(signal.SIGINT, shutdown)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=POLL_S)
    finally:
        service.stop()
        server.server_close()
    announce("repro service stopped")
    return 0
