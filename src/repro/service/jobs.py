"""Experiment jobs: wire specs, the FIFO queue, and the job journal.

A *job* is one submitted experiment spec — a grid of sweep cells
(queries x platforms x process counts) — moving through the states
``queued → running → done | failed``.  Three concerns live here:

* :class:`JobSpec` — the validated, JSON-round-trippable form of a
  grid request.  Validation goes through the *existing* error
  taxonomy: unknown queries and bad shapes raise
  :class:`~repro.errors.ConfigError`, unknown platforms raise
  :class:`~repro.errors.UnknownPlatformError` (with the nearest-match
  suggestion) — exactly the errors the CLI already maps to exit code
  2, which the daemon maps to typed 4xx envelopes instead.
* :class:`JobQueue` — strict FIFO with two admission controls:
  per-tenant token-bucket **rate limiting** and whole-queue
  **backpressure** (a bounded depth).  Both refusals carry a
  ``retry_after_s`` hint the daemon turns into ``429`` +
  ``Retry-After``.
* the **job journal** — one JSON file per job under
  ``<data_dir>/jobs/``, rewritten atomically on every state change.
  After a ``kill -9`` the daemon reloads the journal and re-enqueues
  every job that was ``queued`` or ``running`` (in original submission
  order), and because cell results live in the shared
  content-addressed :class:`~repro.core.resultcache.ResultCache` and
  per-job progress in a :class:`~repro.core.resilience
  .CheckpointManifest`, the resumed job recomputes only unfinished
  cells — bitwise-identical to an uninterrupted run (the same
  guarantee ``repro sweep --resume`` has had since PR 5, now held by a
  daemon).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..config import DEFAULT_SIM, SimConfig
from ..errors import ConfigError, ReproError
from ..core.sweep import CellKey, normalize_cell
from ..mem.registry import REGISTRY
from ..tpch.datagen import TPCHConfig
from ..tpch.queries import QUERIES, PAPER_QUERIES

#: Journal format version; bump on any serialization change.
JOB_FORMAT = 1

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed")


class QueueFullError(ReproError):
    """The FIFO queue is at capacity (backpressure)."""

    def __init__(self, depth: int, retry_after_s: float) -> None:
        self.depth = depth
        self.retry_after_s = retry_after_s
        super().__init__(
            f"job queue is full ({depth} job(s) queued); "
            f"retry in {retry_after_s:.0f}s"
        )


class RateLimitedError(ReproError):
    """A tenant exhausted its submission token bucket."""

    def __init__(self, tenant: str, retry_after_s: float) -> None:
        self.tenant = tenant
        self.retry_after_s = retry_after_s
        super().__init__(
            f"tenant {tenant!r} is rate-limited; "
            f"retry in {retry_after_s:.1f}s"
        )


@dataclass(frozen=True)
class JobSpec:
    """One grid request, validated and JSON-round-trippable.

    The field set deliberately mirrors the ``repro sweep`` CLI axes —
    a submission is a sweep that runs on someone else's machine.
    """

    queries: Tuple[str, ...]
    platforms: Tuple[str, ...]
    nprocs: Tuple[int, ...]
    repetitions: int = 1
    param_mode: str = "default"
    sf: float = 0.001
    seed: int = 19920101

    def __post_init__(self) -> None:
        if not self.queries:
            raise ConfigError("spec needs at least one query")
        if not self.platforms:
            raise ConfigError("spec needs at least one platform")
        if not self.nprocs:
            raise ConfigError("spec needs at least one process count")
        for q in self.queries:
            if q not in QUERIES:
                raise ConfigError(
                    f"unknown query {q!r}; known: {', '.join(sorted(QUERIES))}"
                )
        for n in self.nprocs:
            if not isinstance(n, int) or n < 1:
                raise ConfigError(f"process counts must be integers >= 1, got {n!r}")
        if self.repetitions < 1:
            raise ConfigError("repetitions must be >= 1")
        if self.param_mode not in ("default", "random"):
            raise ConfigError("param_mode must be 'default' or 'random'")
        if not self.sf > 0:
            raise ConfigError("sf must be > 0")
        # Resolve every platform now: unknown names raise
        # UnknownPlatformError (with suggestion) at admission time, not
        # halfway through a queued job.  Only *registered* names are
        # admitted — a wire client has no business naming paths on the
        # daemon's filesystem (register the machine file server-side).
        for p in self.platforms:
            REGISTRY.get(p)

    # -- wire codec ---------------------------------------------------------
    @classmethod
    def from_payload(cls, d: dict) -> "JobSpec":
        """Build a spec from a submission payload (raises the
        :mod:`repro.errors` taxonomy on anything invalid)."""
        if not isinstance(d, dict):
            raise ConfigError("spec must be a JSON object")
        known = {
            "queries", "platforms", "nprocs", "repetitions",
            "param_mode", "sf", "seed",
        }
        unknown = sorted(set(d) - known)
        if unknown:
            raise ConfigError(
                f"unknown spec field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )

        def as_tuple(key, default):
            value = d.get(key, default)
            if isinstance(value, (str, int)):
                value = [value]
            if not isinstance(value, (list, tuple)):
                raise ConfigError(f"spec field {key!r} must be a list")
            return tuple(value)

        try:
            repetitions = int(d.get("repetitions", 1))
            seed = int(d.get("seed", 19920101))
            sf = float(d.get("sf", 0.001))
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"bad numeric spec field: {exc}") from None
        return cls(
            queries=tuple(str(q) for q in as_tuple("queries", list(PAPER_QUERIES))),
            platforms=tuple(
                str(p) for p in as_tuple("platforms", list(REGISTRY.paper_platforms()))
            ),
            nprocs=as_tuple("nprocs", [1]),
            repetitions=repetitions,
            param_mode=str(d.get("param_mode", "default")),
            sf=sf,
            seed=seed,
        )

    def to_dict(self) -> dict:
        return {
            "queries": list(self.queries),
            "platforms": list(self.platforms),
            "nprocs": list(self.nprocs),
            "repetitions": self.repetitions,
            "param_mode": self.param_mode,
            "sf": self.sf,
            "seed": self.seed,
        }

    # -- derived ------------------------------------------------------------
    def cells(self) -> List[CellKey]:
        """The grid this spec names, in canonical order."""
        return [
            normalize_cell((q, p, n, self.repetitions, self.param_mode))
            for q in self.queries
            for p in self.platforms
            for n in self.nprocs
        ]

    def tpch(self) -> TPCHConfig:
        return TPCHConfig(sf=self.sf, seed=self.seed)

    def sim(self) -> SimConfig:
        return DEFAULT_SIM

    def fingerprint(self) -> str:
        """Content address of the spec (not the code): two submissions
        of the same grid share it, which is what makes cross-tenant
        dedup visible in job metadata."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class Job:
    """One submission moving through the queue."""

    id: str
    seq: int
    tenant: str
    spec: JobSpec
    state: str = "queued"
    #: Sweep attempts (a recovered job increments this).
    attempts: int = 0
    error: Optional[str] = None
    #: The finished sweep's report dict (ran/memoized/cache stats...).
    report: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "format": JOB_FORMAT,
            "id": self.id,
            "seq": self.seq,
            "tenant": self.tenant,
            "spec": self.spec.to_dict(),
            "spec_fingerprint": self.spec.fingerprint(),
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "report": self.report,
            "n_cells": len(self.spec.cells()),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Job":
        return cls(
            id=str(d["id"]),
            seq=int(d["seq"]),
            tenant=str(d.get("tenant", "anonymous")),
            spec=JobSpec.from_payload(d["spec"]),
            state=str(d.get("state", "queued")),
            attempts=int(d.get("attempts", 0)),
            error=d.get("error"),
            report=d.get("report"),
        )


class TokenBucket:
    """Per-tenant submission budget: ``burst`` tokens, refilled at
    ``rate_per_s``.  Time injectable for tests."""

    def __init__(self, rate_per_s: float, burst: int, clock=time.monotonic):
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def try_take(self) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds until the
        next token becomes available."""
        now = self._clock()
        self._tokens = min(
            float(self.burst),
            self._tokens + (now - self._last) * self.rate_per_s,
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        if self.rate_per_s <= 0:
            return 3600.0
        return (1.0 - self._tokens) / self.rate_per_s


class JobQueue:
    """Strict FIFO job queue with admission control and a crash journal.

    Thread-safe: the HTTP handler threads submit and read, a single
    worker thread pops — one worker is what makes the queue's FIFO
    promise also an *execution order* promise (and what lets every job
    reuse the cells of the jobs admitted before it through the shared
    result cache).
    """

    def __init__(
        self,
        data_dir: Path,
        max_depth: int = 64,
        rate_per_s: float = 10.0,
        burst: int = 20,
        clock=time.monotonic,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.jobs_dir = self.data_dir / "jobs"
        self.max_depth = max_depth
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._fifo: List[str] = []  # queued job ids, FIFO
        self._buckets: Dict[str, TokenBucket] = {}
        self._next_seq = 0
        #: Jobs dropped versus admitted, for the service-info endpoint.
        self.admitted = 0
        self.rejected_full = 0
        self.rejected_rate = 0

    # -- journal ------------------------------------------------------------
    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _persist(self, job: Job) -> None:
        """Atomic journal write (unique tmp + rename), same discipline
        as the result cache and checkpoint manifest."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self._job_path(job.id)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.jobs_dir), prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(job.to_dict(), sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def recover(self) -> List[Job]:
        """Reload the journal after a restart.

        Jobs that were ``queued`` or ``running`` when the daemon died
        re-enter the FIFO in original submission order (``running``
        ones first — they were admitted earlier by construction) with
        ``attempts`` preserved; finished jobs just become readable
        again.  Returns the re-enqueued jobs.
        """
        recovered: List[Job] = []
        entries = []
        try:
            paths = sorted(self.jobs_dir.glob("*.json"))
        except OSError:
            paths = []
        for path in paths:
            try:
                d = json.loads(path.read_text())
                job = Job.from_dict(d)
            except (OSError, ValueError, KeyError, ConfigError, TypeError):
                continue  # a torn/foreign file is not a reason to refuse to start
            entries.append(job)
        entries.sort(key=lambda j: j.seq)
        with self._lock:
            for job in entries:
                self._jobs[job.id] = job
                self._next_seq = max(self._next_seq, job.seq + 1)
                if job.state in ("queued", "running"):
                    if job.state == "running":
                        job.state = "queued"
                    self._fifo.append(job.id)
                    recovered.append(job)
            if recovered:
                self._not_empty.notify_all()
        for job in recovered:
            self._persist(job)
        return recovered

    # -- admission ----------------------------------------------------------
    def submit(self, tenant: str, spec: JobSpec) -> Job:
        """Admit one job, or raise :class:`RateLimitedError` /
        :class:`QueueFullError` with a ``retry_after_s`` hint."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate_per_s, self.burst, self._clock
                )
            retry = bucket.try_take()
            if retry is not None:
                self.rejected_rate += 1
                raise RateLimitedError(tenant, retry)
            if len(self._fifo) >= self.max_depth:
                self.rejected_full += 1
                # A full queue drains at sweep speed; hint one job's
                # worth of patience per queued job ahead of the caller.
                raise QueueFullError(len(self._fifo), 5.0 * len(self._fifo))
            seq = self._next_seq
            self._next_seq += 1
            job_id = f"{spec.fingerprint()}-{seq:06d}"
            job = Job(id=job_id, seq=seq, tenant=tenant, spec=spec)
            self._jobs[job_id] = job
            self._fifo.append(job_id)
            self.admitted += 1
            self._not_empty.notify_all()
        self._persist(job)
        return job

    # -- worker side --------------------------------------------------------
    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the oldest queued job, marking it ``running``; ``None``
        on timeout."""
        with self._lock:
            if not self._fifo:
                self._not_empty.wait(timeout)
            if not self._fifo:
                return None
            job = self._jobs[self._fifo.pop(0)]
            job.state = "running"
            job.attempts += 1
        self._persist(job)
        return job

    def finish(
        self,
        job: Job,
        report: Optional[dict] = None,
        error: Optional[str] = None,
    ) -> None:
        """Record a job's terminal state (``done`` or ``failed``)."""
        with self._lock:
            job.state = "failed" if error is not None else "done"
            job.error = error
            job.report = report
        self._persist(job)

    # -- readers ------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    @property
    def depth(self) -> int:
        """Queued (not yet running) jobs."""
        with self._lock:
            return len(self._fifo)

    def stats(self) -> dict:
        with self._lock:
            states: Dict[str, int] = {s: 0 for s in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "depth": len(self._fifo),
                "max_depth": self.max_depth,
                "admitted": self.admitted,
                "rejected_rate_limited": self.rejected_rate,
                "rejected_queue_full": self.rejected_full,
                "rate_per_s": self.rate_per_s,
                "burst": self.burst,
                "states": states,
            }
