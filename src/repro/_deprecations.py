"""Deprecation shims for API transitions.

PR 5 froze the public construction surface of the core config
dataclasses: fields are passed by keyword, so the field order stops
being API and new fields can be inserted where they belong.  Positional
construction keeps working through :func:`keyword_only_init`, but warns
— downstream code gets one deprecation cycle to migrate.
"""

from __future__ import annotations

import functools
import warnings


def keyword_only_init(cls):
    """Make ``cls.__init__`` warn (``DeprecationWarning``) on positional
    arguments while still accepting them.

    Applied *after* the ``@dataclass`` decorator so the generated
    ``__init__`` (including a frozen class's ``object.__setattr__``
    plumbing) is reused unchanged; the wrapper only inspects ``args``.
    Returns ``cls`` so it composes as a decorator or a plain call.
    """
    orig_init = cls.__init__

    @functools.wraps(orig_init)
    def __init__(self, *args, **kwargs):
        if args:
            warnings.warn(
                f"positional arguments to {cls.__name__}() are deprecated "
                f"and will be removed; pass fields by keyword",
                DeprecationWarning,
                stacklevel=2,
            )
        orig_init(self, *args, **kwargs)

    cls.__init__ = __init__
    return cls
