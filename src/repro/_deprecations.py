"""Deprecation shims for API transitions.

PR 5 froze the public construction surface of the core config
dataclasses: fields are passed by keyword, so the field order stops
being API and new fields can be inserted where they belong.  Positional
construction keeps working through :func:`keyword_only_init`, but warns
— downstream code gets one deprecation cycle to migrate.

Every active deprecation and its removal horizon is listed in
:data:`REMOVALS` — the single place to look before cutting a breaking
release.
"""

from __future__ import annotations

import functools
import warnings

#: Active deprecations and when each surface goes away.  "v2" means the
#: ``repro/v2`` envelope/API bump; nothing is removed silently before
#: its listed horizon.
REMOVALS = {
    "positional-config-init": {
        "surface": "positional arguments to the config dataclasses "
                   "(SimConfig, TPCHConfig, ExperimentSpec, ...)",
        "since": "PR 5",
        "replacement": "pass fields by keyword",
        "horizon": "v2",
    },
    "parallel-jobs-kwarg": {
        "surface": "ParallelSweepRunner(jobs=N)",
        "since": "PR 8",
        "replacement": "ParallelSweepRunner("
                       "executor=select_executor(jobs=N))",
        "horizon": "v2",
    },
    "json-top-level-mirrors": {
        "surface": "top-level keys (other than schema/kind/data) in "
                   "`repro sweep --json` / `repro verify --json` output",
        "since": "PR 10",
        "replacement": "read the repro/v1 envelope's data/* instead",
        "horizon": "v2",
    },
}

#: Deprecation messages already emitted this process (see
#: :func:`warn_once`).
_WARNED = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` at most once per process.

    A deprecated surface hit in a loop (every runner construction, every
    sweep) must not flood stderr: the first hit warns, the rest are
    silent.  ``key`` should name an entry in :data:`REMOVALS`.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def keyword_only_init(cls):
    """Make ``cls.__init__`` warn (``DeprecationWarning``) on positional
    arguments while still accepting them.

    Applied *after* the ``@dataclass`` decorator so the generated
    ``__init__`` (including a frozen class's ``object.__setattr__``
    plumbing) is reused unchanged; the wrapper only inspects ``args``.
    Returns ``cls`` so it composes as a decorator or a plain call.
    """
    orig_init = cls.__init__

    @functools.wraps(orig_init)
    def __init__(self, *args, **kwargs):
        if args:
            warnings.warn(
                f"positional arguments to {cls.__name__}() are deprecated "
                f"and will be removed; pass fields by keyword",
                DeprecationWarning,
                stacklevel=2,
            )
        orig_init(self, *args, **kwargs)

    cls.__init__ = __init__
    return cls
