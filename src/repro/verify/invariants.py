"""Coherence invariant checker.

An :class:`InvariantChecker` is a sink on the observer bus
(:mod:`repro.obs.bus`): attach it to a live :class:`MemorySystem`
(:meth:`MemorySystem.attach_sink`) and it asserts, after every
completed coherence transition, the properties a correct MESI
directory protocol can never violate:

* **SWMR** — at most one cache holds a line writable (E/M), and a
  writable copy excludes every other valid copy.
* **Directory–cache agreement** — the directory's holder bookkeeping
  matches the caches exactly: the owner really holds the line E/M,
  recorded sharers really hold it S, and nobody else holds it at all.
* **Inclusion** — on a two-level hierarchy (Origin), a valid L1 line is
  always covered by a valid coherent-level line, and the L1's
  permission never exceeds the coherent level's (E/M in the L1 requires
  E/M below; the converse is allowed — a silent coherent-level upgrade
  leaves untouched L1 sub-lines in E).
* **Migratory / transfer bookkeeping** — migratory marks only appear
  when the machine's optimization is on; ``written_since_transfer`` is
  impossible in sharers mode; writer/owner ids are in range.
* **Counter identities** — per-CPU stats satisfy the structural
  identities of the accounting (L1 misses split into L2 hits and
  coherent misses, the cold/capacity/comm kinds partition the coherent
  misses, per-class breakdowns sum to their totals, ...).

Checks fire *between* transitions, never inside one, so transient
mid-transaction states cause no false positives.  Attachment works by
the bus's method shadowing, so a memory system with no sinks pays
nothing — the hot path runs the exact unhooked bytecode (asserted by
the overhead benchmark and the structural tests).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Set

import numpy as np

from ..errors import CoherenceError
from ..mem.directory import NO_OWNER
from ..mem.memsys import CpuMemStats, MemorySystem
from ..obs import schema as _schema
from ..mem.states import EXCLUSIVE, INVALID, MODIFIED, SHARED

_STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}
_WRITABLE = (EXCLUSIVE, MODIFIED)


class InvariantViolation(CoherenceError):
    """A coherence invariant does not hold — always a simulator bug."""


class InvariantChecker:
    """Checks one :class:`MemorySystem`'s invariants transition by
    transition.  Construct it, then :func:`attach` it (or use the
    :func:`checking` context manager)."""

    def __init__(self, memsys: MemorySystem, full_every: int = 0) -> None:
        self.memsys = memsys
        #: Every ``full_every`` transitions run :meth:`check_all` as
        #: well as the per-line check (0 = line checks only).
        self.full_every = full_every
        self.n_transitions = 0
        self.n_line_checks = 0
        self.n_full_checks = 0
        self._mask = memsys._coh_mask
        self._n_cpus = memsys.machine.n_cpus

    # -- sink protocol (called by the MemorySystem bus) ---------------------
    def after_transaction(self, cpu: int, addr: int, now: int = 0) -> None:
        """A miss/upgrade transaction (and any eviction it caused) is
        complete; the touched line and the issuing CPU's stats must be
        consistent now.  ``now`` is the transaction's simulated issue
        time (unused by the checks, carried by the bus)."""
        self.n_transitions += 1
        self.check_line(addr)
        self.check_stats(cpu)
        if self.full_every and self.n_transitions % self.full_every == 0:
            self.check_all()

    def after_silent_upgrade(self, cpu: int, addr: int) -> None:
        """A silent E→M write happened (no directory transaction)."""
        self.n_transitions += 1
        self.check_line(addr)

    # -- single-line checks -------------------------------------------------
    def _holder_states(self, line: int) -> Dict[int, int]:
        """Coherent-level state of ``line`` in every cache that has it."""
        out: Dict[int, int] = {}
        for cpu, h in enumerate(self.memsys.hierarchies):
            state = h.coherent.peek(line)
            if state != INVALID:
                out[cpu] = state
        return out

    def check_line(self, addr: int) -> None:
        """Assert every per-line invariant for the coherence line
        containing ``addr``."""
        self.n_line_checks += 1
        ms = self.memsys
        line = addr & self._mask
        held = self._holder_states(line)

        def fail(msg: str) -> None:
            states = ", ".join(
                f"cpu{c}={_STATE_NAMES[s]}" for c, s in sorted(held.items())
            )
            raise InvariantViolation(
                f"line {line:#x}: {msg} [cache states: {states or 'none'}]"
            )

        # SWMR, from the caches alone.
        writers = [c for c, s in held.items() if s in _WRITABLE]
        if len(writers) > 1:
            fail(f"multiple writable copies (cpus {writers})")
        if writers and len(held) > 1:
            fail(f"writable copy at cpu{writers[0]} coexists with other copies")

        # Directory agreement.
        directory = ms.engine.directory
        if not directory.known(line):
            if held:
                fail("caches hold a line the directory has never seen")
            return
        e = directory.peek(line)
        if e.excl_owner != NO_OWNER and e.sharers:
            fail(f"directory has owner {e.excl_owner} and sharers {e.sharers:b}")
        dir_holders = e.holders()
        cache_holders = 0
        for c in held:
            cache_holders |= 1 << c
        if dir_holders != cache_holders:
            fail(
                f"directory holders {dir_holders:b} != cache holders "
                f"{cache_holders:b}"
            )
        if e.excl_owner != NO_OWNER:
            if not 0 <= e.excl_owner < self._n_cpus:
                fail(f"owner {e.excl_owner} out of range")
            if held.get(e.excl_owner) not in _WRITABLE:
                fail(
                    f"directory owner cpu{e.excl_owner} holds the line "
                    f"{_STATE_NAMES.get(held.get(e.excl_owner, INVALID))}, not E/M"
                )
        else:
            for c, s in held.items():
                if s != SHARED:
                    fail(f"sharers-mode line held {_STATE_NAMES[s]} by cpu{c}")
            if e.sharers and e.written_since_transfer:
                fail("written_since_transfer set on a sharers-mode line")

        # Migratory bookkeeping.
        if e.migratory and not ms.engine.migratory_enabled:
            fail("migratory mark on a machine without the optimization")
        if e.last_writer != NO_OWNER and not 0 <= e.last_writer < self._n_cpus:
            fail(f"last_writer {e.last_writer} out of range")

        # Inclusion + permission ordering, per adjacent level pair.
        for cpu, h in enumerate(ms.hierarchies):
            if not h.has_l2:
                continue
            levels = h.levels
            for li in range(len(levels) - 1):
                inner, outer = levels[li], levels[li + 1]
                step = inner.config.line_size
                for a in range(line, line + h.coherent_line_size, step):
                    in_state = inner.peek(a)
                    if in_state == INVALID:
                        continue
                    out_state = outer.peek(a)
                    if out_state == INVALID:
                        fail(
                            f"cpu{cpu} L{li + 1} holds {a:#x} with no "
                            f"coherent copy below it (L{li + 2} invalid)"
                        )
                    if in_state in _WRITABLE and out_state not in _WRITABLE:
                        fail(
                            f"cpu{cpu} L{li + 1} permission "
                            f"{_STATE_NAMES[in_state]} at {a:#x} exceeds "
                            f"L{li + 2} {_STATE_NAMES[out_state]}"
                        )

    # -- stats checks -------------------------------------------------------
    def check_stats(self, cpu: int) -> None:
        """Assert the structural counter identities for one CPU."""
        st = self.memsys.stats[cpu]
        self._check_stats_obj(st, f"cpu{cpu}")

    def _check_stats_obj(self, st: CpuMemStats, who: str) -> None:
        def fail(msg: str) -> None:
            raise InvariantViolation(f"{who} stats: {msg}")

        for name in _schema.MEM_FIELD_NAMES:
            v = getattr(st, name)
            flat: List[int] = []
            if isinstance(v, list):
                for item in v:
                    flat.extend(item if isinstance(item, list) else [item])
            else:
                flat.append(v)
            if any(x < 0 for x in flat):
                fail(f"negative counter {name}={v}")

        if st.level1_misses != st.l2_hits + st.coherent_misses:
            fail(
                f"level1_misses {st.level1_misses} != l2_hits {st.l2_hits} "
                f"+ coherent_misses {st.coherent_misses}"
            )
        if st.mem_accesses != st.coherent_misses + st.upgrades:
            fail(
                f"mem_accesses {st.mem_accesses} != coherent_misses "
                f"{st.coherent_misses} + upgrades {st.upgrades}"
            )
        if sum(st.miss_kind) != st.coherent_misses:
            fail(
                f"miss kinds {st.miss_kind} do not partition "
                f"{st.coherent_misses} coherent misses"
            )
        if sum(st.level1_misses_by_class) != st.level1_misses:
            fail("per-class level-1 misses do not sum to the total")
        if sum(st.coherent_misses_by_class) != st.coherent_misses:
            fail("per-class coherent misses do not sum to the total")
        for k in range(_schema.N_MISS_KINDS):
            by_class = sum(row[k] for row in st.miss_kind_by_class)
            if by_class != st.miss_kind[k]:
                fail(f"per-class miss kind {k} sums to {by_class}, total {st.miss_kind[k]}")

    def check_stats_at_rest(self, cpu: int) -> None:
        """Identities that relate miss counters to access counts.  Only
        valid *between* batches: the fast path bulk-applies read/write
        counts at batch end, so these lag mid-batch by design."""
        self.check_stats(cpu)
        st = self.memsys.stats[cpu]

        def fail(msg: str) -> None:
            raise InvariantViolation(f"cpu{cpu} stats: {msg}")

        if st.level1_misses > st.reads + st.writes:
            fail("more level-1 misses than accesses")
        if st.upgrades + st.silent_upgrades > st.writes:
            fail("more upgrades than writes")

    # -- whole-system check -------------------------------------------------
    def _all_lines(self) -> Iterator[int]:
        seen = set()
        for line, _ in self.memsys.engine.directory.items():
            seen.add(line)
        for h in self.memsys.hierarchies:
            for ln, state in h.coherent.resident():
                if state != INVALID:
                    seen.add(h.coherent.line_base(ln))
        return iter(sorted(seen))

    def check_all(self, at_rest: bool = False) -> None:
        """Check every known line, every CPU's stats, and the engine's
        global counters.  O(directory size) — use sparingly inline, or
        once at end of run (then pass ``at_rest=True`` to include the
        batch-boundary access-count identities too)."""
        self.n_full_checks += 1
        for line in self._all_lines():
            self.check_line(line)
        for cpu in range(self._n_cpus):
            if at_rest:
                self.check_stats_at_rest(cpu)
            else:
                self.check_stats(cpu)
        engine = self.memsys.engine
        for _key, name in _schema.ENGINE_FIELDS:
            if getattr(engine, name) < 0:
                raise InvariantViolation(f"engine counter {name} negative")
        if not engine.migratory_enabled and (
            engine.n_migratory_transfers or engine.n_migratory_detected
        ):
            raise InvariantViolation(
                "migratory counters nonzero with the optimization disabled"
            )
        if engine.n_migratory_transfers > engine.n_interventions:
            raise InvariantViolation(
                "more migratory transfers than interventions"
            )
        for cpu, h in enumerate(self.memsys.hierarchies):
            if not h.check_inclusion():
                raise InvariantViolation(f"cpu{cpu}: cache inclusion broken")


class BatchedInvariantChecker:
    """Array-verification mode of the invariant checker.

    The per-transition :class:`InvariantChecker` costs a Python
    callback plus a scalar line walk per coherence transaction — a
    >5× slowdown on miss-heavy streams.  This checker instead rides the
    memory system's *deferred* observation hook
    (:meth:`MemorySystem.attach_deferred_sink`): the fast batched
    engines log one address per completed transaction and hand the log
    over at batch boundaries, and every ``check_every`` transactions
    this checker verifies the **whole system at once** with NumPy array
    passes over struct-of-arrays snapshots of the caches
    (:meth:`SetAssocCache.soa_view`) and the directory:

    * SWMR via a group-by over the concatenated (line, cpu, state)
      residency table (``argsort`` + ``reduceat``),
    * directory–cache agreement by or-reducing per-line holder
      bitmasks and comparing against the directory's arrays,
    * sharers/owner mode, ``written_since_transfer``, migratory and
      id-range checks as vector predicates over the directory arrays,
    * inclusion and permission ordering per adjacent level pair via
      ``searchsorted`` of the covering outer lines into each CPU's
      per-level residency.

    The properties verified are exactly those of
    :meth:`InvariantChecker.check_all` (each sweep checks *every* line,
    not just the touched ones); what is traded away is detection
    granularity — a violation surfaces at the next sweep, up to
    ``check_every`` transactions after the reference that caused it,
    rather than at the transaction itself.  Counter identities are
    still checked per sweep through the exact checker.  When a sweep
    flags a violation, :meth:`InvariantChecker.check_all` is re-run to
    produce the precise scalar diagnostic.
    """

    def __init__(self, memsys: MemorySystem, check_every: int = 256) -> None:
        self.memsys = memsys
        self.exact = InvariantChecker(memsys)
        self.check_every = check_every
        self.n_transitions = 0
        self.n_sweeps = 0
        self._since_sweep = 0
        self._pending_cpus: Set[int] = set()
        self._n_cpus = memsys.machine.n_cpus

    # -- deferred-sink protocol ---------------------------------------------
    def on_batch_end(self, cpu: int, txlog: List[int]) -> None:
        """The memory system finished a batch that completed
        ``len(txlog)`` transactions."""
        n = len(txlog)
        self.n_transitions += n
        self._since_sweep += n
        self._pending_cpus.add(cpu)
        if self._since_sweep >= self.check_every:
            self.check_pending()

    def check_pending(self) -> None:
        """Run a full-system array sweep now (also called automatically
        every ``check_every`` transactions)."""
        self._since_sweep = 0
        for cpu in sorted(self._pending_cpus):
            self.exact.check_stats(cpu)
        self._pending_cpus.clear()
        self._array_sweep()

    def close(self) -> None:
        """Final sweep plus the exact at-rest whole-system check; call
        once driving is done (the :func:`checking_batched` context
        manager does)."""
        self.check_pending()
        self.exact.check_all(at_rest=True)

    # -- the vectorized whole-system sweep ----------------------------------
    def _diagnose(self, line: int) -> None:
        """An array pass flagged ``line``; re-run the scalar checker for
        its precise failure message."""
        self.exact.check_line(line)
        self.exact.check_all()
        raise InvariantViolation(
            f"array sweep flagged line {line:#x} but the scalar recheck "
            "passed — checker logic disagreement"
        )

    def _array_sweep(self) -> None:
        ms = self.memsys
        self.n_sweeps += 1
        coh_shift = ms.hierarchies[0].coherent.config.line_shift
        # -- gather the global residency table --------------------------------
        per_cpu = []  # (sorted coherent line bases, states) per cpu
        bases_l = []
        cpus_l = []
        states_l = []
        inner_views = []  # per cpu: the non-coherent levels' views, innermost first
        for cpu, h in enumerate(ms.hierarchies):
            views = h.soa_views()
            tags, states, _ = views[-1]
            inner_views.append(views[:-1])
            m = tags >= 0
            ln = tags[m] << coh_shift
            cs = states[m]
            o = np.argsort(ln)
            per_cpu.append((ln[o], cs[o]))
            if ln.shape[0]:
                bases_l.append(ln)
                states_l.append(cs)
                cpus_l.append(np.full(ln.shape[0], cpu, dtype=np.int64))
        if bases_l:
            bases = np.concatenate(bases_l)
            cst = np.concatenate(states_l)
            ccpu = np.concatenate(cpus_l)
            order = np.argsort(bases, kind="stable")
            bases = bases[order]
            cst = cst[order]
            ccpu = ccpu[order]
            starts = np.flatnonzero(
                np.concatenate(([True], bases[1:] != bases[:-1]))
            )
            gbases = bases[starts]
            gsize = np.diff(np.concatenate((starts, [bases.shape[0]])))
            writable = ((cst == EXCLUSIVE) | (cst == MODIFIED)).astype(np.int64)
            wcount = np.add.reduceat(writable, starts)
            # SWMR: one writable copy, and it tolerates no other copy
            bad = np.flatnonzero((wcount > 1) | ((wcount >= 1) & (gsize > 1)))
            if bad.size:
                self._diagnose(int(gbases[bad[0]]))
            holders = np.bitwise_or.reduceat(np.int64(1) << ccpu, starts)
            non_shared = np.add.reduceat((cst != SHARED).astype(np.int64), starts)
            single_state = cst[starts]  # meaningful where gsize == 1
        else:
            gbases = np.empty(0, dtype=np.int64)
            holders = np.empty(0, dtype=np.int64)
            non_shared = np.empty(0, dtype=np.int64)
            single_state = np.empty(0, dtype=np.int8)
        # -- directory arrays -------------------------------------------------
        entries = ms.engine.directory._entries
        n_e = len(entries)
        dbase = np.empty(n_e, dtype=np.int64)
        downer = np.empty(n_e, dtype=np.int64)
        dsharers = np.empty(n_e, dtype=np.int64)
        dlw = np.empty(n_e, dtype=np.int64)
        dmig = np.empty(n_e, dtype=np.bool_)
        dwst = np.empty(n_e, dtype=np.bool_)
        for i, (line, e) in enumerate(entries.items()):
            dbase[i] = line
            downer[i] = e.excl_owner
            dsharers[i] = e.sharers
            dlw[i] = e.last_writer
            dmig[i] = e.migratory
            dwst[i] = e.written_since_transfer
        o = np.argsort(dbase)
        dbase = dbase[o]
        downer = downer[o]
        dsharers = dsharers[o]
        dlw = dlw[o]
        dmig = dmig[o]
        dwst = dwst[o]
        # mode and id sanity, vectorized over every entry
        bad = np.flatnonzero(
            ((downer != NO_OWNER) & (dsharers != 0))
            | (downer >= self._n_cpus)
            | (downer < NO_OWNER)
            | (dlw >= self._n_cpus)
            | (dlw < NO_OWNER)
            | ((downer == NO_OWNER) & (dsharers != 0) & dwst)
        )
        if bad.size:
            self._diagnose(int(dbase[bad[0]]))
        if not ms.engine.migratory_enabled and dmig.any():
            self._diagnose(int(dbase[int(np.flatnonzero(dmig)[0])]))
        dholders = dsharers.copy()
        m = downer != NO_OWNER
        dholders[m] = np.int64(1) << downer[m]
        # -- directory–cache agreement ---------------------------------------
        idx = np.searchsorted(dbase, gbases)
        known = (idx < n_e) & (dbase[np.minimum(idx, max(n_e - 1, 0))] == gbases) \
            if n_e else np.zeros(gbases.shape[0], dtype=np.bool_)
        bad = np.flatnonzero(~known)
        if bad.size:  # caches hold a line the directory has never seen
            self._diagnose(int(gbases[bad[0]]))
        bad = np.flatnonzero(dholders[idx] != holders)
        if bad.size:
            self._diagnose(int(gbases[bad[0]]))
        # directory lines the caches do not hold must record no holder
        uncached = np.ones(n_e, dtype=np.bool_)
        uncached[idx] = False
        bad = np.flatnonzero(uncached & (dholders != 0))
        if bad.size:
            self._diagnose(int(dbase[bad[0]]))
        # owner-mode lines: the single copy must be writable;
        # sharers-mode lines: every copy must be S
        om = downer[idx] != NO_OWNER
        bad = np.flatnonzero(om & ((single_state != EXCLUSIVE) & (single_state != MODIFIED)))
        if bad.size:
            self._diagnose(int(gbases[bad[0]]))
        bad = np.flatnonzero(~om & (non_shared != 0))
        if bad.size:
            self._diagnose(int(gbases[bad[0]]))
        # -- inclusion + permission ordering, per adjacent level pair ---------
        for cpu, h in enumerate(ms.hierarchies):
            views = inner_views[cpu]
            if not views:
                continue
            levels = h.levels
            # Sorted (byte base, state) residency per level; the coherent
            # level's sorted residency was already built above.
            residency = []
            for li, (lt, lst, _) in enumerate(views):
                vm = lt >= 0
                vb = lt[vm] << levels[li].config.line_shift
                vs = lst[vm]
                vo = np.argsort(vb)
                residency.append((vb[vo], vs[vo]))
            residency.append(per_cpu[cpu])
            for li in range(len(views)):
                ibases, istates = residency[li]
                if not ibases.shape[0]:
                    continue
                obases, ostates = residency[li + 1]
                outer_mask = ~np.int64(levels[li + 1].config.line_size - 1)
                cov = ibases & outer_mask
                j = np.searchsorted(obases, cov)
                nb = obases.shape[0]
                covered = (j < nb) & (obases[np.minimum(j, max(nb - 1, 0))] == cov) \
                    if nb else np.zeros(cov.shape[0], dtype=np.bool_)
                bad = np.flatnonzero(~covered)
                if bad.size:  # inner line with no copy in the level outside it
                    self._diagnose(int(cov[bad[0]] & ms._coh_mask))
                ostate = ostates[np.minimum(j, max(nb - 1, 0))]
                iw = (istates == EXCLUSIVE) | (istates == MODIFIED)
                ow = (ostate == EXCLUSIVE) | (ostate == MODIFIED)
                bad = np.flatnonzero(iw & ~ow)
                if bad.size:
                    self._diagnose(int(cov[bad[0]] & ms._coh_mask))


def attach_batched(
    memsys: MemorySystem, check_every: int = 256
) -> BatchedInvariantChecker:
    """Create a batched checker and hook it into ``memsys``'s deferred
    observation channel."""
    checker = BatchedInvariantChecker(memsys, check_every=check_every)
    memsys.attach_deferred_sink(checker)
    return checker


@contextmanager
def checking_batched(memsys: MemorySystem, check_every: int = 256):
    """``with checking_batched(ms) as chk:`` — batched array
    verification for the duration of the block; a final sweep plus the
    exact at-rest whole-system check runs on successful exit."""
    checker = attach_batched(memsys, check_every=check_every)
    try:
        yield checker
        checker.close()
    finally:
        memsys.detach_deferred_sink(checker)


def attach(memsys: MemorySystem, full_every: int = 0) -> InvariantChecker:
    """Create a checker and hook it into ``memsys``."""
    checker = InvariantChecker(memsys, full_every=full_every)
    memsys.attach_sink(checker)
    return checker


@contextmanager
def checking(memsys: MemorySystem, full_every: int = 0):
    """``with checking(ms) as chk:`` — attach for the duration of the
    block, detach on the way out (even on failure)."""
    checker = attach(memsys, full_every=full_every)
    try:
        yield checker
    finally:
        memsys.detach_sink(checker)
