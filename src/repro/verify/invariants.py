"""Coherence invariant checker.

An :class:`InvariantChecker` is a sink on the observer bus
(:mod:`repro.obs.bus`): attach it to a live :class:`MemorySystem`
(:meth:`MemorySystem.attach_sink`) and it asserts, after every
completed coherence transition, the properties a correct MESI
directory protocol can never violate:

* **SWMR** — at most one cache holds a line writable (E/M), and a
  writable copy excludes every other valid copy.
* **Directory–cache agreement** — the directory's holder bookkeeping
  matches the caches exactly: the owner really holds the line E/M,
  recorded sharers really hold it S, and nobody else holds it at all.
* **Inclusion** — on a two-level hierarchy (Origin), a valid L1 line is
  always covered by a valid coherent-level line, and the L1's
  permission never exceeds the coherent level's (E/M in the L1 requires
  E/M below; the converse is allowed — a silent coherent-level upgrade
  leaves untouched L1 sub-lines in E).
* **Migratory / transfer bookkeeping** — migratory marks only appear
  when the machine's optimization is on; ``written_since_transfer`` is
  impossible in sharers mode; writer/owner ids are in range.
* **Counter identities** — per-CPU stats satisfy the structural
  identities of the accounting (L1 misses split into L2 hits and
  coherent misses, the cold/capacity/comm kinds partition the coherent
  misses, per-class breakdowns sum to their totals, ...).

Checks fire *between* transitions, never inside one, so transient
mid-transaction states cause no false positives.  Attachment works by
the bus's method shadowing, so a memory system with no sinks pays
nothing — the hot path runs the exact unhooked bytecode (asserted by
the overhead benchmark and the structural tests).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

from ..errors import CoherenceError
from ..mem.directory import NO_OWNER
from ..mem.memsys import CpuMemStats, MemorySystem
from ..obs import schema as _schema
from ..mem.states import EXCLUSIVE, INVALID, MODIFIED, SHARED

_STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}
_WRITABLE = (EXCLUSIVE, MODIFIED)


class InvariantViolation(CoherenceError):
    """A coherence invariant does not hold — always a simulator bug."""


class InvariantChecker:
    """Checks one :class:`MemorySystem`'s invariants transition by
    transition.  Construct it, then :func:`attach` it (or use the
    :func:`checking` context manager)."""

    def __init__(self, memsys: MemorySystem, full_every: int = 0) -> None:
        self.memsys = memsys
        #: Every ``full_every`` transitions run :meth:`check_all` as
        #: well as the per-line check (0 = line checks only).
        self.full_every = full_every
        self.n_transitions = 0
        self.n_line_checks = 0
        self.n_full_checks = 0
        self._mask = memsys._coh_mask
        self._n_cpus = memsys.machine.n_cpus

    # -- sink protocol (called by the MemorySystem bus) ---------------------
    def after_transaction(self, cpu: int, addr: int, now: int = 0) -> None:
        """A miss/upgrade transaction (and any eviction it caused) is
        complete; the touched line and the issuing CPU's stats must be
        consistent now.  ``now`` is the transaction's simulated issue
        time (unused by the checks, carried by the bus)."""
        self.n_transitions += 1
        self.check_line(addr)
        self.check_stats(cpu)
        if self.full_every and self.n_transitions % self.full_every == 0:
            self.check_all()

    def after_silent_upgrade(self, cpu: int, addr: int) -> None:
        """A silent E→M write happened (no directory transaction)."""
        self.n_transitions += 1
        self.check_line(addr)

    # -- single-line checks -------------------------------------------------
    def _holder_states(self, line: int) -> Dict[int, int]:
        """Coherent-level state of ``line`` in every cache that has it."""
        out: Dict[int, int] = {}
        for cpu, h in enumerate(self.memsys.hierarchies):
            state = h.coherent.peek(line)
            if state != INVALID:
                out[cpu] = state
        return out

    def check_line(self, addr: int) -> None:
        """Assert every per-line invariant for the coherence line
        containing ``addr``."""
        self.n_line_checks += 1
        ms = self.memsys
        line = addr & self._mask
        held = self._holder_states(line)

        def fail(msg: str) -> None:
            states = ", ".join(
                f"cpu{c}={_STATE_NAMES[s]}" for c, s in sorted(held.items())
            )
            raise InvariantViolation(
                f"line {line:#x}: {msg} [cache states: {states or 'none'}]"
            )

        # SWMR, from the caches alone.
        writers = [c for c, s in held.items() if s in _WRITABLE]
        if len(writers) > 1:
            fail(f"multiple writable copies (cpus {writers})")
        if writers and len(held) > 1:
            fail(f"writable copy at cpu{writers[0]} coexists with other copies")

        # Directory agreement.
        directory = ms.engine.directory
        if not directory.known(line):
            if held:
                fail("caches hold a line the directory has never seen")
            return
        e = directory.peek(line)
        if e.excl_owner != NO_OWNER and e.sharers:
            fail(f"directory has owner {e.excl_owner} and sharers {e.sharers:b}")
        dir_holders = e.holders()
        cache_holders = 0
        for c in held:
            cache_holders |= 1 << c
        if dir_holders != cache_holders:
            fail(
                f"directory holders {dir_holders:b} != cache holders "
                f"{cache_holders:b}"
            )
        if e.excl_owner != NO_OWNER:
            if not 0 <= e.excl_owner < self._n_cpus:
                fail(f"owner {e.excl_owner} out of range")
            if held.get(e.excl_owner) not in _WRITABLE:
                fail(
                    f"directory owner cpu{e.excl_owner} holds the line "
                    f"{_STATE_NAMES.get(held.get(e.excl_owner, INVALID))}, not E/M"
                )
        else:
            for c, s in held.items():
                if s != SHARED:
                    fail(f"sharers-mode line held {_STATE_NAMES[s]} by cpu{c}")
            if e.sharers and e.written_since_transfer:
                fail("written_since_transfer set on a sharers-mode line")

        # Migratory bookkeeping.
        if e.migratory and not ms.engine.migratory_enabled:
            fail("migratory mark on a machine without the optimization")
        if e.last_writer != NO_OWNER and not 0 <= e.last_writer < self._n_cpus:
            fail(f"last_writer {e.last_writer} out of range")

        # Inclusion + permission ordering for two-level hierarchies.
        for cpu, h in enumerate(ms.hierarchies):
            if not h.has_l2:
                continue
            coh_state = held.get(cpu, INVALID)
            step = h.l1.config.line_size
            for a in range(line, line + h.coherent_line_size, step):
                l1_state = h.l1.peek(a)
                if l1_state == INVALID:
                    continue
                if coh_state == INVALID:
                    fail(f"cpu{cpu} L1 holds {a:#x} with no coherent copy")
                if l1_state in _WRITABLE and coh_state not in _WRITABLE:
                    fail(
                        f"cpu{cpu} L1 permission {_STATE_NAMES[l1_state]} at "
                        f"{a:#x} exceeds coherent {_STATE_NAMES[coh_state]}"
                    )

    # -- stats checks -------------------------------------------------------
    def check_stats(self, cpu: int) -> None:
        """Assert the structural counter identities for one CPU."""
        st = self.memsys.stats[cpu]
        self._check_stats_obj(st, f"cpu{cpu}")

    def _check_stats_obj(self, st: CpuMemStats, who: str) -> None:
        def fail(msg: str) -> None:
            raise InvariantViolation(f"{who} stats: {msg}")

        for name in _schema.MEM_FIELD_NAMES:
            v = getattr(st, name)
            flat: List[int] = []
            if isinstance(v, list):
                for item in v:
                    flat.extend(item if isinstance(item, list) else [item])
            else:
                flat.append(v)
            if any(x < 0 for x in flat):
                fail(f"negative counter {name}={v}")

        if st.level1_misses != st.l2_hits + st.coherent_misses:
            fail(
                f"level1_misses {st.level1_misses} != l2_hits {st.l2_hits} "
                f"+ coherent_misses {st.coherent_misses}"
            )
        if st.mem_accesses != st.coherent_misses + st.upgrades:
            fail(
                f"mem_accesses {st.mem_accesses} != coherent_misses "
                f"{st.coherent_misses} + upgrades {st.upgrades}"
            )
        if sum(st.miss_kind) != st.coherent_misses:
            fail(
                f"miss kinds {st.miss_kind} do not partition "
                f"{st.coherent_misses} coherent misses"
            )
        if sum(st.level1_misses_by_class) != st.level1_misses:
            fail("per-class level-1 misses do not sum to the total")
        if sum(st.coherent_misses_by_class) != st.coherent_misses:
            fail("per-class coherent misses do not sum to the total")
        for k in range(_schema.N_MISS_KINDS):
            by_class = sum(row[k] for row in st.miss_kind_by_class)
            if by_class != st.miss_kind[k]:
                fail(f"per-class miss kind {k} sums to {by_class}, total {st.miss_kind[k]}")

    def check_stats_at_rest(self, cpu: int) -> None:
        """Identities that relate miss counters to access counts.  Only
        valid *between* batches: the fast path bulk-applies read/write
        counts at batch end, so these lag mid-batch by design."""
        self.check_stats(cpu)
        st = self.memsys.stats[cpu]

        def fail(msg: str) -> None:
            raise InvariantViolation(f"cpu{cpu} stats: {msg}")

        if st.level1_misses > st.reads + st.writes:
            fail("more level-1 misses than accesses")
        if st.upgrades + st.silent_upgrades > st.writes:
            fail("more upgrades than writes")

    # -- whole-system check -------------------------------------------------
    def _all_lines(self) -> Iterator[int]:
        seen = set()
        for line, _ in self.memsys.engine.directory.items():
            seen.add(line)
        for h in self.memsys.hierarchies:
            for ln, state in h.coherent.resident():
                if state != INVALID:
                    seen.add(h.coherent.line_base(ln))
        return iter(sorted(seen))

    def check_all(self, at_rest: bool = False) -> None:
        """Check every known line, every CPU's stats, and the engine's
        global counters.  O(directory size) — use sparingly inline, or
        once at end of run (then pass ``at_rest=True`` to include the
        batch-boundary access-count identities too)."""
        self.n_full_checks += 1
        for line in self._all_lines():
            self.check_line(line)
        for cpu in range(self._n_cpus):
            if at_rest:
                self.check_stats_at_rest(cpu)
            else:
                self.check_stats(cpu)
        engine = self.memsys.engine
        for _key, name in _schema.ENGINE_FIELDS:
            if getattr(engine, name) < 0:
                raise InvariantViolation(f"engine counter {name} negative")
        if not engine.migratory_enabled and (
            engine.n_migratory_transfers or engine.n_migratory_detected
        ):
            raise InvariantViolation(
                "migratory counters nonzero with the optimization disabled"
            )
        if engine.n_migratory_transfers > engine.n_interventions:
            raise InvariantViolation(
                "more migratory transfers than interventions"
            )
        for cpu, h in enumerate(self.memsys.hierarchies):
            if not h.check_inclusion():
                raise InvariantViolation(f"cpu{cpu}: L1/L2 inclusion broken")


def attach(memsys: MemorySystem, full_every: int = 0) -> InvariantChecker:
    """Create a checker and hook it into ``memsys``."""
    checker = InvariantChecker(memsys, full_every=full_every)
    memsys.attach_sink(checker)
    return checker


@contextmanager
def checking(memsys: MemorySystem, full_every: int = 0):
    """``with checking(ms) as chk:`` — attach for the duration of the
    block, detach on the way out (even on failure)."""
    checker = attach(memsys, full_every=full_every)
    try:
        yield checker
    finally:
        memsys.detach_sink(checker)
