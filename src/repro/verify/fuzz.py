"""Randomized differential fuzzer for the memory system.

Every round draws a random :class:`~repro.trace.synthetic.SyntheticSpec`
(seeded — the whole campaign is a pure function of its seed), generates
a synthetic sharing trace, and drives the *same* trace through six
legs of the simulator:

1. the reference per-reference slow loop,
2. the batched fast path (scalar engine + columnar NumPy kernel),
3. the slow loop with the invariant checker attached,
4. the fast path with the invariant checker attached,
5. the fast path with the *batched* array-verification checker on the
   deferred observation channel,
6. the fast path fed through the trace-store codec (flatten to delta-
   encoded arrays, decode back) — the persistence layer must be
   bitwise transparent.

All legs must produce identical *fingerprints* — every counter of every
CPU, the final resident set of every cache level, the full directory
image, the engine's global counters and the interconnect's request
count.  Any divergence is a bug in one of the paths (or in the checker
hooks, which must be observation-only); any
:class:`~repro.verify.invariants.InvariantViolation` is a protocol bug.
On failure the trace is shrunk with a greedy delta-debugging pass
before being reported, so the reproducer in the report is small.

A few rounds per campaign additionally cross-check the serial
:class:`~repro.core.sweep.SweepRunner` against the
:class:`~repro.core.parallel.ParallelSweepRunner` on a real (tiny)
experiment cell, covering the process-pool path the synthetic traces
cannot reach — and capture a real cell's workload tape with
:func:`~repro.trace.capture.capture_workload`, replaying it on both
machines against direct execution, covering the full capture → replay
pipeline end to end.

The caches are shrunk far below the experiment configuration
(:data:`FUZZ_SCALE_LOG2`) so short traces still generate evictions,
interventions and upgrades in quantity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..mem.machine import platform
from ..mem.memsys import MemorySystem
from ..trace.stream import RefBatch
from ..trace.synthetic import SyntheticSpec, batch_from_refs, count_refs, generate
from .invariants import InvariantViolation, checking, checking_batched

#: Extra cache shrink used by fuzz rounds: with the HPV D-cache at 4 KB
#: (128 lines) and the Origin L2 at 8 KB (64 lines), a few hundred
#: references already force capacity evictions and re-fetches.
FUZZ_SCALE_LOG2 = 9

#: Platforms every campaign alternates between (round-robin, so every
#: registered axis point — including the three-level islands machine
#: with its prefetcher — is exercised in any campaign of >= 4 rounds).
FUZZ_PLATFORMS: Tuple[str, ...] = ("hpv", "sgi", "islands-2x8", "flat-smp-16")


@dataclass
class FuzzFailure:
    """One minimized divergence."""

    round_index: int
    seed: int
    platform: str
    #: ``counter-divergence`` (legs disagree), ``invariant`` (checker
    #: fired), ``parallel-divergence`` (serial vs pool results), or
    #: ``replay-divergence`` (captured tape replays differently than
    #: direct execution).
    kind: str
    detail: str
    n_batches: int
    n_refs: int

    def describe(self) -> str:
        return (
            f"round {self.round_index} ({self.platform}, seed {self.seed:#x}): "
            f"{self.kind} — {self.detail} "
            f"[shrunk to {self.n_refs} refs in {self.n_batches} batches]"
        )

    def to_dict(self) -> Dict:
        return {
            "round_index": self.round_index,
            "seed": self.seed,
            "platform": self.platform,
            "kind": self.kind,
            "detail": self.detail,
            "n_batches": self.n_batches,
            "n_refs": self.n_refs,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    budget: int
    seed: int
    rounds: int = 0
    parallel_checks: int = 0
    replay_checks: int = 0
    transitions_checked: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# -- driving a trace ---------------------------------------------------------
def drive_trace(
    memsys: MemorySystem,
    trace: Sequence[Sequence[RefBatch]],
    base_cpi: float,
) -> List[int]:
    """Round-robin the per-CPU batch streams through ``memsys`` and
    return each CPU's final clock.

    The cost model mirrors :meth:`Processor.run_batch` exactly — same
    float additions in the same order, clock truncated once per batch —
    so the fast and slow legs are comparable bit for bit.
    """
    n_cpus = len(trace)
    clocks = [0] * n_cpus
    depth = max((len(b) for b in trace), default=0)
    for i in range(depth):
        for cpu in range(n_cpus):
            if i >= len(trace[cpu]):
                continue
            batch = trace[cpu][i]
            now = clocks[cpu]
            if memsys.fast_path:
                cycles = memsys.access_batch(cpu, batch, now, base_cpi)
            else:
                access = memsys.access
                cycles = 0.0
                t = now
                for addr, is_write, instrs, cls in batch:
                    cost = instrs * base_cpi
                    cost += access(cpu, addr, is_write, cls, int(t + cost))
                    cycles += cost
                    t += cost
            clocks[cpu] = now + int(cycles)
    return clocks


def fingerprint(
    memsys: MemorySystem, clocks: List[int], n_active: int
) -> Dict:
    """Everything observable about a finished run, as comparable data."""
    engine = memsys.engine
    return {
        "clocks": list(clocks),
        "stats": [memsys.stats[cpu].to_dict() for cpu in range(n_active)],
        "coherent": [
            sorted(h.coherent.resident()) for h in memsys.hierarchies[:n_active]
        ],
        "inner_levels": [
            [sorted(c.resident()) for c in h.levels[:-1]] if h.has_l2 else None
            for h in memsys.hierarchies[:n_active]
        ],
        "prefetch_fills": memsys.n_prefetch_fills,
        "directory": sorted(
            (
                line,
                e.excl_owner,
                e.sharers,
                e.migratory,
                e.last_writer,
                e.written_since_transfer,
            )
            for line, e in engine.directory.items()
        ),
        "engine": {
            "interventions": engine.n_interventions,
            "migratory_transfers": engine.n_migratory_transfers,
            "migratory_detected": engine.n_migratory_detected,
            "invalidations": engine.n_invalidations,
            "writebacks": engine.n_writebacks,
            "downgrades": engine.n_downgrades,
        },
        "interconnect": memsys.interconnect.n_requests,
    }


def _first_diff(a: Dict, b: Dict) -> str:
    """Human-oriented pointer at the first differing fingerprint key."""
    for key in a:
        if a[key] != b[key]:
            return f"first divergent field: {key!r} ({a[key]!r} != {b[key]!r})"
    return "fingerprints differ"


@dataclass
class _RoundOutcome:
    """What running one trace four ways produced."""

    kind: Optional[str] = None  # None = all legs agree, no violation
    detail: str = ""
    transitions: int = 0


def _run_round(
    plat: str,
    spec: SyntheticSpec,
    trace: Sequence[Sequence[RefBatch]],
    aspace,
    memsys_factory: Callable[..., MemorySystem],
) -> _RoundOutcome:
    """Drive one trace through all six legs; compare fingerprints."""
    machine = platform(plat, n_cpus=spec.n_cpus).scaled(FUZZ_SCALE_LOG2)
    out = _RoundOutcome()
    prints: List[Tuple[str, Dict]] = []
    for fast in (False, True):
        for check in (False, True):
            leg = f"{'fast' if fast else 'slow'}/{'checked' if check else 'plain'}"
            ms = memsys_factory(machine, aspace, fast_path=fast)
            try:
                if check:
                    with checking(ms, full_every=16) as chk:
                        clocks = drive_trace(ms, trace, machine.base_cpi)
                        chk.check_all(at_rest=True)
                    out.transitions += chk.n_transitions
                else:
                    clocks = drive_trace(ms, trace, machine.base_cpi)
            except InvariantViolation as exc:
                out.kind = "invariant"
                out.detail = f"leg {leg}: {exc}"
                return out
            prints.append((leg, fingerprint(ms, clocks, spec.n_cpus)))
    # Fifth leg: the deferred-channel batched checker must also be
    # observation-only, and its array sweeps must agree with the scalar
    # checker about the trace being clean.
    ms = memsys_factory(machine, aspace, fast_path=True)
    try:
        with checking_batched(ms, check_every=64) as bchk:
            clocks = drive_trace(ms, trace, machine.base_cpi)
        out.transitions += bchk.n_transitions
    except InvariantViolation as exc:
        out.kind = "invariant"
        out.detail = f"leg fast/batched-checked: {exc}"
        return out
    prints.append(("fast/batched-checked", fingerprint(ms, clocks, spec.n_cpus)))
    # Sixth leg: round-trip every CPU's batch stream through the
    # trace-store codec (flatten → delta-encode → decode) exactly as
    # ``TraceStore`` persists workload tapes, then drive the decoded
    # refs through the fast path.  The codec must be invisible.
    from ..errors import TraceError
    from ..trace.store import arrays_to_tape, tape_to_arrays

    try:
        codec_trace = [
            [
                b
                for _kind, b in arrays_to_tape(
                    tape_to_arrays([("batch", b) for b in batches], {}), []
                )
            ]
            for batches in trace
        ]
    except TraceError as exc:
        out.kind = "counter-divergence"
        out.detail = f"leg fast/store-codec: codec rejected its own output: {exc}"
        return out
    ms = memsys_factory(machine, aspace, fast_path=True)
    clocks = drive_trace(ms, codec_trace, machine.base_cpi)
    prints.append(("fast/store-codec", fingerprint(ms, clocks, spec.n_cpus)))
    ref_leg, ref = prints[0]
    for leg, fp in prints[1:]:
        if fp != ref:
            out.kind = "counter-divergence"
            out.detail = f"legs {ref_leg} vs {leg}: {_first_diff(ref, fp)}"
            return out
    return out


# -- shrinking ---------------------------------------------------------------
def shrink_trace(
    plat: str,
    spec: SyntheticSpec,
    trace: List[List[RefBatch]],
    aspace,
    memsys_factory: Callable[..., MemorySystem],
    max_attempts: int = 200,
) -> List[List[RefBatch]]:
    """Greedy delta-debugging: repeatedly try dropping batch chunks and
    halving batches, keeping any reduction that still fails.  Bounded
    by ``max_attempts`` re-runs so shrinking can't dominate a campaign."""
    attempts = 0

    def still_fails(candidate: List[List[RefBatch]]) -> bool:
        nonlocal attempts
        attempts += 1
        return _run_round(plat, spec, candidate, aspace, memsys_factory).kind is not None

    # Phase 1: drop whole batches, halving chunk size each sweep.
    flat = [(cpu, i) for cpu, bs in enumerate(trace) for i in range(len(bs))]
    chunk = max(1, len(flat) // 2)
    while chunk >= 1 and attempts < max_attempts:
        i = 0
        progress = False
        while i < len(flat) and attempts < max_attempts:
            keep = set(flat[:i] + flat[i + chunk:])
            candidate = [
                [b for j, b in enumerate(bs) if (cpu, j) in keep]
                for cpu, bs in enumerate(trace)
            ]
            if still_fails(candidate):
                flat = flat[:i] + flat[i + chunk:]
                trace = candidate
                # Re-index: candidate compacted each CPU's list.
                flat = [
                    (cpu, i2)
                    for cpu, bs in enumerate(trace)
                    for i2 in range(len(bs))
                ]
                progress = True
            else:
                i += chunk
        if not progress:
            chunk //= 2

    # Phase 2: halve individual batches (front or back half).
    for cpu in range(len(trace)):
        for i in range(len(trace[cpu])):
            while len(trace[cpu][i]) > 1 and attempts < max_attempts:
                refs = list(trace[cpu][i])
                half = len(refs) // 2
                reduced = None
                for part in (refs[:half], refs[half:]):
                    candidate = [list(bs) for bs in trace]
                    candidate[cpu][i] = batch_from_refs(part)
                    if still_fails(candidate):
                        reduced = candidate
                        break
                if reduced is None:
                    break
                trace = reduced
    return trace


# -- the campaign ------------------------------------------------------------
def _parallel_cell_check(rng: random.Random) -> Optional[str]:
    """Run one random tiny cell serially and through the process pool;
    return a description of any divergence (None = agreement)."""
    import dataclasses

    from ..config import TEST_SIM
    from ..core.executors import select_executor
    from ..core.parallel import ParallelSweepRunner
    from ..core.sweep import SweepRunner
    from ..tpch.datagen import TPCHConfig

    tpch = TPCHConfig(sf=0.0004, seed=20020411)
    cell = (
        rng.choice(("Q6", "Q12")),
        rng.choice(FUZZ_PLATFORMS),
        rng.choice((1, 2)),
    )
    serial = SweepRunner(sim=TEST_SIM, tpch=tpch).cell(*cell)
    pooled = ParallelSweepRunner(
        sim=TEST_SIM, tpch=tpch, executor=select_executor(jobs=2)
    ).cell(*cell)

    def key(res):
        return [
            (
                run.wall_cycles,
                run.interconnect_queue_delay_mean,
                run.n_backoffs,
                run.query_rows,
                [dataclasses.astuple(s) for s in run.per_process],
            )
            for run in res.runs
        ]

    if key(serial) != key(pooled):
        return f"cell {cell}: serial and pooled results diverge"
    return None


def _replay_cell_check(rng: random.Random) -> Optional[str]:
    """Capture one random tiny cell's workload tape, replay it on both
    machines, and compare each against direct execution; return a
    description of any divergence (None = agreement)."""
    import dataclasses

    from ..config import TEST_SIM
    from ..core.experiment import ExperimentSpec, run_experiment
    from ..tpch.datagen import TPCHConfig
    from ..trace.capture import capture_workload, replay_workload

    tpch = TPCHConfig(sf=0.0004, seed=20020411)
    query = rng.choice(("Q6", "Q12"))
    n_procs = rng.choice((1, 2))
    captured_on = rng.choice(FUZZ_PLATFORMS)

    def spec(plat):
        return ExperimentSpec(
            query=query, platform=plat, n_procs=n_procs,
            tpch=tpch, sim=TEST_SIM,
        )

    def key(res):
        return [
            (
                run.wall_cycles,
                run.interconnect_queue_delay_mean,
                run.n_backoffs,
                run.query_rows,
                [dataclasses.astuple(s) for s in run.per_process],
            )
            for run in res.runs
        ]

    direct_captured, trace = capture_workload(spec(captured_on))
    for plat in FUZZ_PLATFORMS:
        direct = (
            direct_captured if plat == captured_on
            else run_experiment(spec(plat))
        )
        if key(replay_workload(spec(plat), trace)) != key(direct):
            return (
                f"cell ({query}, {plat}, {n_procs}): replay of tape "
                f"captured on {captured_on} diverges from direct execution"
            )
    return None


def fuzz(
    budget: int = 50,
    seed: int = 0xF422,
    platforms: Sequence[str] = FUZZ_PLATFORMS,
    shrink: bool = True,
    parallel_checks: Optional[int] = None,
    replay_checks: Optional[int] = None,
    memsys_factory: Callable[..., MemorySystem] = MemorySystem,
) -> FuzzReport:
    """Run a fuzz campaign of ``budget`` rounds; stop at the first
    failure (shrunk if ``shrink``).

    ``parallel_checks`` (default ``max(1, budget // 100)``) serial-vs-
    pool cross-checks run at the end of a clean campaign; pass 0 to
    skip them (they build a tiny TPC-H database).  ``replay_checks``
    capture-vs-replay cross-checks follow (default: same count as the
    parallel checks).  ``memsys_factory`` exists for the self-tests:
    injecting a deliberately broken :class:`MemorySystem` subclass must
    make the campaign fail.
    """
    report = FuzzReport(budget=budget, seed=seed)
    rng = random.Random(seed)
    for round_index in range(budget):
        round_seed = rng.getrandbits(32)
        plat = platforms[round_index % len(platforms)]
        spec = SyntheticSpec(
            seed=round_seed,
            n_cpus=rng.choice((2, 3, 4)),
            n_batches=rng.randint(4, 12),
            refs_per_batch=rng.randint(10, 60),
            n_shared_lines=rng.choice((8, 16, 24)),
            n_private_lines=rng.choice((16, 32)),
            p_write=rng.choice((0.1, 0.3, 0.5)),
            # Push the batched engine's inline L2-hit and upgrade
            # branches as hard as the L1 one: most rounds enable the
            # dedicated patterns (0 keeps a share of pure-legacy mixes).
            w_l2_reuse=rng.choice((0, 15, 30)),
            w_upgrade=rng.choice((0, 10, 20)),
        )
        aspace, trace = generate(spec)
        report.rounds += 1
        outcome = _run_round(plat, spec, trace, aspace, memsys_factory)
        report.transitions_checked += outcome.transitions
        if outcome.kind is None:
            continue
        if shrink:
            trace = shrink_trace(plat, spec, trace, aspace, memsys_factory)
            # Re-run the minimal trace for the freshest failure detail.
            final = _run_round(plat, spec, trace, aspace, memsys_factory)
            if final.kind is not None:
                outcome = final
        report.failures.append(
            FuzzFailure(
                round_index=round_index,
                seed=round_seed,
                platform=plat,
                kind=outcome.kind,
                detail=outcome.detail,
                n_batches=sum(len(b) for b in trace),
                n_refs=count_refs(trace),
            )
        )
        return report  # first failure ends the campaign

    n_par = parallel_checks if parallel_checks is not None else max(1, budget // 100)
    for _ in range(n_par):
        report.parallel_checks += 1
        diverged = _parallel_cell_check(rng)
        if diverged is not None:
            report.failures.append(
                FuzzFailure(
                    round_index=report.rounds,
                    seed=seed,
                    platform="-",
                    kind="parallel-divergence",
                    detail=diverged,
                    n_batches=0,
                    n_refs=0,
                )
            )
            return report

    n_replay = replay_checks if replay_checks is not None else n_par
    for _ in range(n_replay):
        report.replay_checks += 1
        diverged = _replay_cell_check(rng)
        if diverged is not None:
            report.failures.append(
                FuzzFailure(
                    round_index=report.rounds,
                    seed=seed,
                    platform="-",
                    kind="replay-divergence",
                    detail=diverged,
                    n_batches=0,
                    n_refs=0,
                )
            )
            return report
    return report
