"""Golden-metrics regression harness.

A *golden snapshot* freezes the full simulated counter vector of one
headline experiment cell — every :class:`CpuMemStats` field of every
active CPU, the wall clock, the interconnect's mean queue delay, and
the coherence engine's global counters — as a JSON file under
``tests/golden/``.  The harness re-runs each cell and demands bitwise
equality: the simulator is deterministic, so *any* drift is either an
intended behaviour change (re-bless with ``repro verify
--update-golden`` and review the diff in version control) or a bug.

The covered cells are the paper's three queries on both machines at 1,
2 and 4 processes — small enough to run in CI, wide enough that a
change to any layer (trace generation, caches, directory, interconnect,
scheduler) moves at least one snapshot.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimConfig
from ..obs import schema as _schema
from ..tpch.datagen import TPCHConfig

#: Bump when the snapshot schema changes (old files then read as diffs
#: with an explanatory detail, not as crashes).
GOLDEN_FORMAT = 1

#: Deterministic small configuration, spelled out literally so golden
#: runs cannot drift when the shared test defaults are tuned.
GOLDEN_SIM = SimConfig(
    time_slice_cycles=200_000,
    context_switch_cycles=500,
    backoff_cycles=10_000,
    spin_tries=2,
)

#: The tiny dataset every test session already builds (same sf/seed as
#: the test suite's ``TINY_TPCH``), so goldens share the database cache.
GOLDEN_TPCH = TPCHConfig(sf=0.0004, seed=20020411)

GOLDEN_QUERIES: Tuple[str, ...] = ("Q6", "Q21", "Q12")
GOLDEN_PLATFORMS: Tuple[str, ...] = ("hpv", "sgi")
GOLDEN_NPROCS: Tuple[int, ...] = (1, 2, 4)

#: The modern machine-file platforms get a narrower matrix (the three
#: queries at one process count) — enough that any drift in the
#: three-level / islands / prefetch paths moves a snapshot without
#: doubling CI time.
GOLDEN_MODERN_PLATFORMS: Tuple[str, ...] = ("islands-2x8", "flat-smp-16")
GOLDEN_MODERN_NPROCS: Tuple[int, ...] = (2,)

Cell = Tuple[str, str, int]


def golden_cells() -> List[Cell]:
    """The full covered matrix, in stable order: the paper pair first,
    then the modern machine-file platforms."""
    cells = [
        (q, p, n)
        for q in GOLDEN_QUERIES
        for p in GOLDEN_PLATFORMS
        for n in GOLDEN_NPROCS
    ]
    cells += [
        (q, p, n)
        for q in GOLDEN_QUERIES
        for p in GOLDEN_MODERN_PLATFORMS
        for n in GOLDEN_MODERN_NPROCS
    ]
    return cells


def cell_name(cell: Cell) -> str:
    """Snapshot file stem for one cell, e.g. ``Q6_hpv_p1``."""
    q, p, n = cell
    return f"{q}_{p}_p{n}"


def default_golden_dir() -> Path:
    """``tests/golden`` next to the package's repo checkout."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def capture_cell(cell: Cell) -> Dict:
    """Run one cell and serialize everything the snapshot freezes.

    The cell runs against a **freshly built** database, never the
    shared :class:`DatabaseCache` instance: shared-memory segments
    (spinlock words, per-backend private areas) are bump-allocated
    lazily on first use, so a shared database's address-space layout —
    and therefore cache-set mapping and counters — would depend on
    whatever ran earlier in the process.  A fresh build makes every
    snapshot a pure function of the cell."""
    from ..core.workload import make_query_process
    from ..mem.machine import platform
    from ..mem.memsys import MemorySystem
    from ..osim.scheduler import Kernel
    from ..tpch.datagen import build_database
    from ..tpch.queries import QUERIES

    query, plat, n_procs = cell
    db = build_database(GOLDEN_TPCH)
    machine = platform(plat).scaled(GOLDEN_SIM.cache_scale_log2)
    memsys = MemorySystem(machine, db.aspace, fast_path=GOLDEN_SIM.fast_path)
    kernel = Kernel(machine, memsys, GOLDEN_SIM)
    qdef = QUERIES[query]
    params = qdef.params()
    for pid in range(n_procs):
        gen, _ = make_query_process(db, qdef, params, pid, cpu=pid)
        kernel.spawn(gen, cpu=pid)
    kernel.run()
    engine = memsys.engine
    return {
        "format": GOLDEN_FORMAT,
        "query": query,
        "platform": plat,
        "n_procs": n_procs,
        "sim": asdict(GOLDEN_SIM),
        "tpch": asdict(GOLDEN_TPCH),
        "wall_cycles": kernel.wall_cycles(),
        "mean_queue_delay": memsys.interconnect.mean_queue_delay,
        "engine": {
            key: getattr(engine, attr) for key, attr in _schema.ENGINE_FIELDS
        },
        "stats": [memsys.stats[cpu].to_dict() for cpu in range(n_procs)],
    }


def _diff_paths(expected, got, prefix: str, out: List[str], limit: int = 8) -> None:
    """Collect dotted paths where two JSON trees differ (bounded)."""
    if len(out) >= limit:
        return
    if isinstance(expected, dict) and isinstance(got, dict):
        for key in sorted(set(expected) | set(got)):
            _diff_paths(
                expected.get(key), got.get(key), f"{prefix}.{key}", out, limit
            )
        return
    if isinstance(expected, list) and isinstance(got, list) and len(expected) == len(got):
        for i, (a, b) in enumerate(zip(expected, got)):
            _diff_paths(a, b, f"{prefix}[{i}]", out, limit)
        return
    if expected != got:
        out.append(f"{prefix}: expected {expected!r}, got {got!r}")


@dataclass
class GoldenDiff:
    """One cell whose re-run does not match its snapshot."""

    cell: str
    path: str
    details: List[str]

    def describe(self) -> str:
        return "; ".join(self.details[:3]) + (
            f" (+{len(self.details) - 3} more)" if len(self.details) > 3 else ""
        )

    def to_dict(self) -> Dict:
        return {"cell": self.cell, "path": self.path, "details": self.details}


@dataclass
class GoldenReport:
    """Outcome of one golden verification (or update) pass."""

    golden_dir: Path
    checked: List[str] = field(default_factory=list)
    diffs: List[GoldenDiff] = field(default_factory=list)
    updated: bool = False

    @property
    def ok(self) -> bool:
        return not self.diffs


def run_golden(
    golden_dir: Path,
    update: bool = False,
    cells: Optional[Sequence[Cell]] = None,
) -> GoldenReport:
    """Re-run every golden cell and compare (or re-bless) snapshots.

    A missing snapshot file is a diff, not a crash — a fresh checkout
    without goldens fails loudly instead of vacuously passing.
    """
    golden_dir = Path(golden_dir)
    report = GoldenReport(golden_dir=golden_dir, updated=update)
    for cell in cells if cells is not None else golden_cells():
        name = cell_name(cell)
        path = golden_dir / f"{name}.json"
        got = capture_cell(cell)
        report.checked.append(name)
        if update:
            golden_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(got, indent=1, sort_keys=True) + "\n")
            continue
        try:
            expected = json.loads(path.read_text())
        except OSError:
            report.diffs.append(
                GoldenDiff(
                    cell=name,
                    path=str(path),
                    details=[
                        "snapshot missing — run `repro verify --update-golden`"
                    ],
                )
            )
            continue
        except ValueError as exc:
            report.diffs.append(
                GoldenDiff(
                    cell=name, path=str(path), details=[f"snapshot unreadable: {exc}"]
                )
            )
            continue
        if expected != got:
            details: List[str] = []
            _diff_paths(expected, got, name, details)
            report.diffs.append(
                GoldenDiff(cell=name, path=str(path), details=details)
            )
    return report
