"""Correctness-verification subsystem.

Three independent pillars, one goal: make simulator bugs loud.

* :mod:`repro.verify.invariants` — a transition observer that asserts
  MESI/directory/inclusion invariants after every coherence transition
  (zero-cost when detached: the unhooked memory system runs unchanged
  bytecode).
* :mod:`repro.verify.fuzz` — a seeded differential fuzzer that drives
  synthetic sharing traces through the fast path vs. the reference
  loop, with and without the checker, and shrinks any divergence to a
  small reproducer.
* :mod:`repro.verify.golden` — golden-metrics regression snapshots of
  full counter vectors for the paper's headline cells.

:func:`run_verification` composes all three for the ``repro verify``
CLI subcommand and CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from .fuzz import FuzzReport, fuzz
from .golden import GOLDEN_SIM, GOLDEN_TPCH, GoldenReport, default_golden_dir, run_golden
from .invariants import (
    BatchedInvariantChecker,
    InvariantChecker,
    InvariantViolation,
    checking,
    checking_batched,
)

__all__ = [
    "BatchedInvariantChecker",
    "InvariantChecker",
    "InvariantViolation",
    "checking",
    "checking_batched",
    "fuzz",
    "run_golden",
    "run_verification",
    "VerifyReport",
]

#: Small real-workload cells run end-to-end with the checker attached —
#: one per platform, two processes each so sharing actually happens.
SMOKE_CELLS: Tuple[Tuple[str, str, int], ...] = (
    ("Q6", "hpv", 2),
    ("Q12", "sgi", 2),
)


@dataclass
class VerifyReport:
    """Combined outcome of one ``repro verify`` invocation."""

    smoke_ok: bool
    smoke_detail: str
    fuzz: Optional[FuzzReport]
    golden: Optional[GoldenReport]
    updated: bool = False

    @property
    def ok(self) -> bool:
        return (
            self.smoke_ok
            and (self.fuzz is None or self.fuzz.ok)
            and (self.golden is None or self.golden.ok)
        )

    def summary_lines(self) -> List[str]:
        lines = []
        lines.append(
            f"invariant smoke: {'OK' if self.smoke_ok else 'FAIL'} "
            f"({self.smoke_detail})"
        )
        if self.fuzz is not None:
            f = self.fuzz
            status = "OK" if f.ok else f"FAIL ({len(f.failures)} failure)"
            lines.append(
                f"differential fuzz: {status} — {f.rounds} rounds, "
                f"{f.transitions_checked} transitions checked, "
                f"{f.parallel_checks} parallel cross-checks, "
                f"{f.replay_checks} replay cross-checks"
            )
            for fail in f.failures:
                lines.append(f"  {fail.describe()}")
        if self.golden is not None:
            g = self.golden
            if self.updated:
                lines.append(f"golden metrics: updated {len(g.checked)} snapshots")
            else:
                status = "OK" if g.ok else f"FAIL ({len(g.diffs)} diffs)"
                lines.append(
                    f"golden metrics: {status} — {len(g.checked)} cells checked"
                )
                for d in g.diffs[:20]:
                    lines.append(f"  {d.cell}: {d.describe()}")
        return lines


def _run_smoke() -> Tuple[bool, str]:
    """Run the smoke cells with the array-verification checker on the
    deferred observation channel — the batched engine (columnar kernel
    included) stays active, so this checks the exact configuration the
    experiments run, at a ~1.4× overhead instead of the per-transition
    checker's ~5× (``BENCH_verify_overhead.json``).  The fuzzer still
    exercises the per-transition checker on its observed leg."""
    # Imported here so ``repro.verify`` stays importable without the
    # full experiment stack loaded at module import time.
    from ..core.experiment import DatabaseCache
    from ..core.workload import make_query_process
    from ..mem.machine import platform
    from ..mem.memsys import MemorySystem
    from ..osim.scheduler import Kernel
    from ..tpch.queries import QUERIES

    db = DatabaseCache.get(GOLDEN_TPCH)
    transitions = 0
    for query, plat, n_procs in SMOKE_CELLS:
        machine = platform(plat).scaled(GOLDEN_SIM.cache_scale_log2)
        db.reset_runtime()
        ms = MemorySystem(machine, db.aspace, fast_path=GOLDEN_SIM.fast_path)
        kernel = Kernel(machine, ms, GOLDEN_SIM)
        qdef = QUERIES[query]
        params = qdef.params()
        try:
            # close() (on clean exit) sweeps the residue and finishes
            # with the exact checker's at-rest pass.
            with checking_batched(ms, check_every=256) as chk:
                for pid in range(n_procs):
                    gen, _ = make_query_process(db, qdef, params, pid, cpu=pid)
                    kernel.spawn(gen, cpu=pid)
                kernel.run()
            transitions += chk.n_transitions
        except InvariantViolation as exc:
            return False, f"{query}/{plat}/p{n_procs}: {exc}"
    return True, (
        f"{len(SMOKE_CELLS)} cells, {transitions} transitions checked "
        f"(batched array sweeps)"
    )


def run_verification(
    *,
    fuzz_budget: int = 50,
    fuzz_seed: int = 0xF422,
    golden_dir: Optional[Path] = None,
    update_golden: bool = False,
    artifacts_dir: Optional[Path] = None,
) -> VerifyReport:
    """Run the full verification stack; never raises on a *finding*
    (the report's ``ok`` says whether everything passed)."""
    smoke_ok, smoke_detail = _run_smoke()
    fuzz_report = fuzz(budget=fuzz_budget, seed=fuzz_seed) if fuzz_budget > 0 else None
    golden_report = run_golden(
        golden_dir or default_golden_dir(), update=update_golden
    )
    report = VerifyReport(
        smoke_ok=smoke_ok,
        smoke_detail=smoke_detail,
        fuzz=fuzz_report,
        golden=golden_report,
        updated=update_golden,
    )
    if artifacts_dir is not None and not report.ok:
        _write_artifacts(report, Path(artifacts_dir))
    return report


def _write_artifacts(report: VerifyReport, out: Path) -> None:
    """Dump machine-readable failure detail for CI artifact upload."""
    out.mkdir(parents=True, exist_ok=True)
    if report.fuzz is not None and not report.fuzz.ok:
        (out / "fuzz_failure.json").write_text(
            json.dumps([f.to_dict() for f in report.fuzz.failures], indent=2)
        )
    if report.golden is not None and not report.golden.ok:
        (out / "golden_diff.json").write_text(
            json.dumps([d.to_dict() for d in report.golden.diffs], indent=2)
        )
    if not report.smoke_ok:
        (out / "smoke_failure.txt").write_text(report.smoke_detail + "\n")
