"""Exception hierarchy for the repro package.

Every error raised on purpose by the simulator derives from
:class:`ReproError` so callers can catch simulator problems without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigError(ReproError):
    """A machine, database, or experiment configuration is invalid."""


class CoherenceError(ReproError):
    """The coherence engine detected a protocol invariant violation.

    This is always a simulator bug, never a workload property; the
    protocol tests assert these are never raised.
    """


class SchedulerError(ReproError):
    """The OS scheduler was driven into an impossible state."""


class DatabaseError(ReproError):
    """A DBMS substrate operation failed (bad page, missing relation...)."""


class TraceError(ReproError):
    """A reference trace is malformed or inconsistent."""


class VerificationError(ReproError):
    """The correctness-verification layer found a divergence or a
    stale/broken golden snapshot (see :mod:`repro.verify`)."""
