"""Exception hierarchy for the repro package.

Every error raised on purpose by the simulator derives from
:class:`ReproError` so callers can catch simulator problems without
swallowing programming errors.

The service layer extends the hierarchy in :mod:`repro.service`
(``EnvelopeError``, ``QueueFullError``, ``RateLimitedError``,
``ServiceError``); the daemon maps the whole taxonomy onto typed
``repro/v1`` error envelopes with HTTP statuses (config errors → 400,
admission errors → 429, see ``repro.service.envelope.ERROR_CODES``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigError(ReproError):
    """A machine, database, or experiment configuration is invalid."""


class UnknownPlatformError(ConfigError):
    """A platform name is not in the machine registry.

    Carries the registered names and (when one is close enough) a
    nearest-match suggestion so CLI users see actionable output.
    """

    def __init__(self, name: str, known, suggestion: str = "") -> None:
        self.name = name
        self.known = tuple(known)
        self.suggestion = suggestion
        msg = f"unknown platform {name!r}; registered: {', '.join(self.known)}"
        if suggestion:
            msg += f" (did you mean {suggestion!r}?)"
        super().__init__(msg)


class MachineFileError(ConfigError):
    """A machine definition file cannot be read or parsed at all
    (missing file, bad TOML/JSON syntax, unsupported extension)."""


class MachineSchemaError(ConfigError):
    """A machine definition file parsed but does not match the machine
    schema: missing or unknown fields, or a field of the wrong type.
    Semantic violations (zero-size cache, non-monotone line sizes, bad
    topology kind...) are raised by the config dataclasses themselves
    as plain :class:`ConfigError`; either way an invalid machine can
    never reach the simulator."""


class CoherenceError(ReproError):
    """The coherence engine detected a protocol invariant violation.

    This is always a simulator bug, never a workload property; the
    protocol tests assert these are never raised.
    """


class SchedulerError(ReproError):
    """The OS scheduler was driven into an impossible state."""


class DatabaseError(ReproError):
    """A DBMS substrate operation failed (bad page, missing relation...)."""


class TraceError(ReproError):
    """A reference trace is malformed or inconsistent."""


class VerificationError(ReproError):
    """The correctness-verification layer found a divergence or a
    stale/broken golden snapshot (see :mod:`repro.verify`)."""
