"""Trace capture and trace-driven replay.

The paper's companion methodology (their TPC-C study, ref [5], was
trace driven): capture the classified reference stream of one query
execution once, then replay it through arbitrary machine models —
dramatically cheaper for cache-geometry studies because the DBMS and
scheduler layers run only during capture.

Capture runs a *single uncontended backend*, so lock acquisitions
always succeed immediately and are recorded as their test-and-set
references; multi-process contention is inherently execution-driven
and cannot be captured this way (replay is a one-CPU methodology, as
it was in the cited work).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cpu.processor import Processor
from ..db.engine import Database
from ..db.executor.context import ExecContext
from ..db.executor.plan import run_query
from ..errors import TraceError
from ..mem.machine import MachineConfig
from ..mem.memsys import CpuMemStats, MemorySystem
from ..osim.syscalls import Compute, Sleep, SpinAcquire, SpinRelease
from ..tpch.queries import QueryDef
from .classify import DataClass
from .stream import RefBatch, single


def capture_query(
    db: Database, qdef: QueryDef, params: Dict, pid: int = 0
) -> Tuple[List[RefBatch], List]:
    """Execute ``qdef`` once, recording its reference stream.

    Returns ``(batches, result_rows)``.  The database's runtime state
    (hint bits, locks) is reset first so the capture equals the first
    run of an experiment repetition.
    """
    db.reset_runtime()
    ctx = ExecContext(db, pid, pid)
    gen = run_query(ctx, qdef.relations(db), qdef.factory(db, ctx, params))
    batches: List[RefBatch] = []
    result = None
    try:
        while True:
            ev = next(gen)
            if isinstance(ev, RefBatch):
                if len(ev):
                    batches.append(ev)
            elif isinstance(ev, SpinAcquire):
                if ev.lock.holder is not None:
                    raise TraceError(
                        f"lock {ev.lock.name} contended during capture; "
                        "capture requires a single backend"
                    )
                ev.lock.holder = pid
                ev.lock.n_acquires += 1
                batches.append(
                    single(ev.lock.addr, write=True, instrs=14, cls=DataClass.LOCK)
                )
            elif isinstance(ev, SpinRelease):
                ev.lock.holder = None
                batches.append(
                    single(ev.lock.addr, write=True, instrs=8, cls=DataClass.LOCK)
                )
            elif isinstance(ev, Compute):
                # Pure compute: attribute the instructions to the hot
                # private expression-scratch line.
                batches.append(
                    single(
                        ctx.ws.qual_addr,
                        write=False,
                        instrs=ev.instrs,
                        cls=DataClass.PRIVATE,
                    )
                )
            elif isinstance(ev, Sleep):
                raise TraceError("unexpected sleep during uncontended capture")
            else:
                raise TraceError(f"unknown event {ev!r} during capture")
    except StopIteration as stop:
        result = stop.value
    return batches, result


class ReplayResult:
    """Outcome of a trace replay."""

    __slots__ = ("cycles", "instructions", "stats")

    def __init__(self, cycles: int, instructions: int, stats: CpuMemStats) -> None:
        self.cycles = cycles
        self.instructions = instructions
        self.stats = stats

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def replay_trace(
    db: Database,
    batches: List[RefBatch],
    machine: MachineConfig,
    cpu: int = 0,
) -> ReplayResult:
    """Drive a captured trace through ``machine``'s memory system.

    ``machine`` must already be scaled; the database supplies the
    address space so segment classification and NUMA homing resolve
    exactly as in the live run.  The capturing backend's private
    workspace segment is (re)materialized first — the bump allocator is
    deterministic, so a freshly rebuilt database reproduces the same
    addresses the capture recorded.
    """
    db.shmem.private(cpu, cpu)
    memsys = MemorySystem(machine, db.aspace)
    processor = Processor(cpu, machine, memsys)
    clock = 0
    for batch in batches:
        clock += processor.run_batch(batch, clock)
    return ReplayResult(clock, processor.instrs_retired, memsys.stats[cpu])
