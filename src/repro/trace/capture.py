"""Trace capture and trace-driven replay.

The paper's companion methodology (their TPC-C study, ref [5], was
trace driven): capture the classified reference stream of one query
execution once, then replay it through arbitrary machine models —
dramatically cheaper for cache-geometry studies because the DBMS and
scheduler layers run only during capture.

Two tiers live here:

**Workload capture/replay** (:func:`capture_workload`,
:func:`replay_workload`) is the sweep's Ramulator-style front-end /
back-end split: each backend's *event tape* — reference batches, lock
acquire/release, compute — is recorded per process as a completely
ordinary execution runs, then replayed through any machine by spawning
one tape-reading generator per process under a fresh
:class:`~repro.osim.scheduler.Kernel`.  The scheduler, spin locks,
backoff, preemption, and memory system all re-run natively at replay,
so every machine-dependent interaction (interleaving, contention,
coherence) is *recomputed* on the target machine rather than baked
into the trace; only the executor — query plans, predicates, buffer
manager bookkeeping, i.e. everything machine-*independent* — is
skipped.  The one machine-dependent bit of the emission itself, the
shared first-toucher hint-bit race, travels as per-batch marks
(:attr:`RefBatch.hints`) and is re-resolved in delivery order against
a replay-side hint set.  Replay is therefore bitwise-equivalent to
direct execution (proven by ``tests/test_replay_equivalence.py`` and
the fuzzer's replay leg), and contention is tolerated by construction:
a contended acquire is retried by the kernel, never re-pulled from the
tape.

**Single-query capture** (:func:`capture_query`,
:func:`replay_trace`) is the older one-CPU methodology kept for the
microbench/ablation paths: it runs one uncontended backend and bakes
lock test-and-set references into a flat batch list, so it rejects
contention outright.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..cpu.processor import Processor
from ..db.engine import Database
from ..db.executor.context import ExecContext
from ..db.executor.plan import run_query
from ..errors import ConfigError, TraceError
from ..mem.machine import MachineConfig, platform
from ..mem.memsys import CpuMemStats, MemorySystem
from ..osim.scheduler import Kernel
from ..osim.syscalls import Compute, Sleep, SpinAcquire, SpinRelease, Spinlock
from ..tpch.datagen import TPCHConfig
from ..tpch.queries import QUERIES, QueryDef
from .classify import DataClass
from .stream import RefBatch, single

#: Tape op kinds. A tape is the exact event sequence one backend
#: yielded to the kernel: ``("batch", RefBatch) | ("acquire", name) |
#: ("release", name) | ("compute", instrs)``.
TapeOp = Tuple[str, object]


# ---------------------------------------------------------------------------
# Workload capture: record every backend's event tape during a normal run
# ---------------------------------------------------------------------------


@dataclass
class WorkloadTrace:
    """The machine-independent half of one experiment cell.

    Everything here is a function of the workload alone — query, data,
    process count, parameter mode — never of the machine or sim config,
    which is what lets one trace serve every cell along the sweep's
    machine axis.  ``locks`` records the shared spinlock addresses at
    capture time so replay can detect a stale trace against a database
    whose layout drifted.
    """

    query: str
    n_procs: int
    repetitions: int
    param_mode: str
    tpch: TPCHConfig
    locks: Dict[str, int]
    query_rows: List[int]
    tapes: List[List[List[TapeOp]]]  # [rep][pid] -> tape

    def matches(self, spec) -> bool:
        """True when this trace records exactly ``spec``'s workload."""
        return (
            self.query == spec.query
            and self.n_procs == spec.n_procs
            and self.repetitions == spec.repetitions
            and self.param_mode == spec.param_mode
            and self.tpch == spec.tpch
        )

    @property
    def n_events(self) -> int:
        return sum(len(tape) for rep in self.tapes for tape in rep)

    @property
    def n_refs(self) -> int:
        return sum(
            len(op[1])
            for rep in self.tapes
            for tape in rep
            for op in tape
            if op[0] == "batch"
        )


class WorkloadCapture:
    """Observation hook recording per-process event tapes.

    Passed to :func:`repro.core.experiment.run_experiment` as
    ``capture=``; wraps each backend generator so every yielded event
    is appended to that ``(rep, pid)`` tape on its way to the kernel.
    The kernel retries a contended ``SpinAcquire`` from its pending
    slot without re-pulling the generator, so each logical event is
    recorded exactly once and contention needs no special casing — the
    wait is implied by the acquire op and is recomputed at replay.
    """

    def __init__(self, spec) -> None:
        self.spec = spec
        self.locks: Dict[str, int] = {}
        self._query_rows: Dict[int, int] = {}
        self._tapes: Dict[Tuple[int, int], List[TapeOp]] = {}

    def record(self, rep: int, pid: int, gen) -> Generator:
        tape: List[TapeOp] = []
        self._tapes[(rep, pid)] = tape

        def recorder():
            while True:
                try:
                    ev = next(gen)
                except StopIteration as stop:
                    return stop.value
                if isinstance(ev, RefBatch):
                    tape.append(("batch", ev))
                elif isinstance(ev, SpinAcquire):
                    self.locks.setdefault(ev.lock.name, ev.lock.addr)
                    tape.append(("acquire", ev.lock.name))
                elif isinstance(ev, SpinRelease):
                    tape.append(("release", ev.lock.name))
                elif isinstance(ev, Compute):
                    tape.append(("compute", ev.instrs))
                else:
                    raise TraceError(
                        f"backend yielded uncapturable event {ev!r}"
                    )
                yield ev

        return recorder()

    def note_rep(self, rep: int, query_rows: int) -> None:
        self._query_rows[rep] = query_rows

    def finish(self) -> WorkloadTrace:
        spec = self.spec
        tapes = []
        for rep in range(spec.repetitions):
            row = []
            for pid in range(spec.n_procs):
                tape = self._tapes.get((rep, pid))
                if tape is None:
                    raise TraceError(
                        f"capture incomplete: no tape for rep {rep} pid {pid}"
                    )
                row.append(tape)
            tapes.append(row)
        return WorkloadTrace(
            query=spec.query,
            n_procs=spec.n_procs,
            repetitions=spec.repetitions,
            param_mode=spec.param_mode,
            tpch=spec.tpch,
            locks=dict(self.locks),
            query_rows=[self._query_rows.get(r, 0) for r in range(spec.repetitions)],
            tapes=tapes,
        )


@contextmanager
def _gc_paused():
    """Suspend the cyclic collector while a workload tape is being
    built or consumed.

    A tape holds millions of small objects (per-batch lists, marks);
    every generation-2 collection traverses all of them, which
    benchmarked at ~30-70% overhead on capture and replay.  Nothing in
    a kernel run relies on cycle collection — the simulation allocates
    acyclically and is refcount-clean — so pausing the collector is
    pure win.  Restores the collector's previous state on exit."""
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def workload_replayable(spec) -> bool:
    """Mutating workloads (the RF refresh streams) consume database
    state, so a recorded tape would not match a second run; everything
    else is capture/replay-eligible."""
    return not QUERIES[spec.query].mutates


def capture_workload(spec, db: Optional[Database] = None):
    """Execute one cell normally while recording per-process tapes.

    Returns ``(ExperimentResult, WorkloadTrace)``; the result is
    bitwise-identical to an uncaptured :func:`run_experiment` of the
    same spec (capture is pure observation).
    """
    from ..core.experiment import run_experiment

    if not workload_replayable(spec):
        raise TraceError(
            f"{spec.query} mutates the database; its tapes would not "
            "replay against repeatable state"
        )
    cap = WorkloadCapture(spec)
    with _gc_paused():
        result = run_experiment(spec, db=db, capture=cap)
    return result, cap.finish()


# ---------------------------------------------------------------------------
# Workload replay: re-interleave the tapes through any machine
# ---------------------------------------------------------------------------


def _resolve_hints(batch: RefBatch, hinted: Set[Tuple[int, int]]) -> RefBatch:
    """Re-run the first-toucher hint-bit race for a replayed batch.

    The write flags baked at capture reflect the *capture* machine's
    delivery order; the replay machine may interleave backends
    differently, so every marked reference is re-decided here, in
    replay delivery order, against the replay's own hint set.

    Resolution stays in whichever representation the batch already
    holds: a list-born batch (in-memory replay) shares its immutable
    addr/instr/class lists via :meth:`RefBatch.take`, while a
    column-born batch (decoded from a trace file) copies only its
    writes column and shares the other three arrays — forcing the
    list materialization here was measured as the dominant overhead
    of decoded replay on hint-heavy workloads."""
    marks = batch.hints
    if not marks:
        return batch
    if batch.is_columnar:
        a, w, i, c = batch.columns()
        writes = w.copy()
        for idx, relid, row in marks:
            key = (relid, row)
            if key in hinted:
                writes[idx] = False
            else:
                hinted.add(key)
                writes[idx] = True
        return RefBatch.take_columns(
            a, writes, i, c, hints=marks, total=batch.total_instrs
        )
    writes = list(batch.writes)
    for idx, relid, row in marks:
        key = (relid, row)
        if key in hinted:
            writes[idx] = False
        else:
            hinted.add(key)
            writes[idx] = True
    return RefBatch.take(batch.addrs, writes, batch.instrs, batch.classes, hints=marks)


def _replay_process(
    tape: List[TapeOp],
    locks: Dict[str, Spinlock],
    hinted: Optional[Set[Tuple[int, int]]],
) -> Generator:
    """Generator yielding one backend's tape back to the kernel.

    Batches are delivered at the captured granularity — coalescing
    would change where the scheduler checks preemption and break
    bitwise equivalence — and lock events are yielded as live
    :class:`SpinAcquire`/:class:`SpinRelease` against the replay
    database's locks, so spinning, backoff, and the TAS/release
    reference charges all happen natively in the kernel.

    ``hinted is None`` marks a single-process replay: with one
    backend, delivery order equals tape order on *every* machine, so
    the capture-time hint flags are already exact and re-resolution
    is skipped."""
    for kind, arg in tape:
        if kind == "batch":
            yield arg if hinted is None else _resolve_hints(arg, hinted)
        elif kind == "acquire":
            yield SpinAcquire(locks[arg])
        elif kind == "release":
            yield SpinRelease(locks[arg])
        elif kind == "compute":
            yield Compute(arg)
        else:
            raise TraceError(f"unknown tape op {kind!r}")


def replay_workload(
    spec,
    trace: WorkloadTrace,
    db: Optional[Database] = None,
    machine: Optional[MachineConfig] = None,
):
    """Replay a captured workload through ``spec``'s machine.

    Mirrors :func:`run_experiment` rep for rep — fresh memory system
    and kernel, runtime reset, private segments materialized in pid
    order — but spawns tape readers instead of query executors.
    Returns an :class:`ExperimentResult` bitwise-identical to direct
    execution of ``spec``.  Raises :class:`TraceError` when the trace
    does not record this workload or its lock addresses no longer
    match the database (the caller should fall back to capture).
    """
    from ..core.experiment import DatabaseCache, ExperimentResult, RunResult
    from ..core.workload import snapshot_process

    if not trace.matches(spec):
        raise TraceError(
            f"trace records {trace.query}x{trace.n_procs} "
            f"({trace.param_mode}, reps={trace.repetitions}), "
            f"spec wants {spec.query}x{spec.n_procs}"
        )
    if db is None:
        db = DatabaseCache.get(spec.tpch)
    if machine is None:
        machine = platform(spec.platform).scaled(spec.sim.cache_scale_log2)
    if spec.n_procs > machine.n_cpus:
        raise ConfigError(
            f"{spec.n_procs} processes exceed {machine.name}'s {machine.n_cpus} CPUs"
        )
    locks: Dict[str, Spinlock] = {}
    for name, addr in trace.locks.items():
        lock = db.shmem.spinlock(name)
        if lock.addr != addr:
            raise TraceError(
                f"lock {name} lives at {lock.addr:#x} but the trace "
                f"recorded {addr:#x}; trace is stale"
            )
        locks[name] = lock

    result = ExperimentResult(spec=spec, machine=machine)
    with _gc_paused():
        _replay_reps(spec, trace, db, machine, locks, result)
    return result


def _replay_reps(spec, trace, db, machine, locks, result) -> None:
    """Rep loop of :func:`replay_workload`, run with GC paused."""
    from ..core.experiment import RunResult
    from ..core.workload import snapshot_process

    for rep in range(spec.repetitions):
        memsys = MemorySystem(machine, db.aspace, fast_path=spec.sim.fast_path)
        kernel = Kernel(machine, memsys, spec.sim)
        db.reset_runtime()
        backoffs_before = sum(l.n_backoffs for l in db.shmem._locks.values())
        hinted: Optional[Set[Tuple[int, int]]] = (
            set() if spec.n_procs > 1 else None
        )
        for pid in range(spec.n_procs):
            # Same pid-ascending order as ExecContext construction in
            # the direct run, so the deterministic bump allocator
            # reproduces identical private-segment addresses.
            db.shmem.private(pid, pid)
            kernel.spawn(
                _replay_process(trace.tapes[rep][pid], locks, hinted), cpu=pid
            )
        kernel.run()
        snaps = [
            snapshot_process(proc, memsys.stats[proc.cpu], machine)
            for proc in kernel.processes
        ]
        n_backoffs = (
            sum(lock.n_backoffs for lock in db.shmem._locks.values())
            - backoffs_before
        )
        result.runs.append(
            RunResult(
                per_process=snaps,
                wall_cycles=kernel.wall_cycles(),
                interconnect_queue_delay_mean=memsys.interconnect.mean_queue_delay,
                n_backoffs=n_backoffs,
                # Replay generators produce no rows (results were
                # verified at capture); report the recorded count.
                query_rows=trace.query_rows[rep],
            )
        )


def run_or_replay(spec, store, db: Optional[Database] = None):
    """Sweep-cell front door: replay if a trace exists, capture if not.

    Returns ``(result, source)`` with ``source`` one of ``"ran"`` (no
    store, or workload not replayable), ``"captured"`` (executed and
    the trace was stored), or ``"replay"`` (tape replayed, executor
    skipped).  A stale or unusable stored trace is discarded and the
    cell degrades to capture — never a crash, never a wrong result.
    """
    from ..core.experiment import run_experiment

    if store is None or not workload_replayable(spec):
        return run_experiment(spec, db=db), "ran"
    trace = store.get(spec)
    if trace is not None:
        try:
            return replay_workload(spec, trace, db=db), "replay"
        except TraceError as exc:
            store.discard(spec, str(exc))
    result, trace = capture_workload(spec, db=db)
    store.put(spec, trace)
    return result, "captured"


# ---------------------------------------------------------------------------
# Legacy single-backend capture (one-CPU methodology)
# ---------------------------------------------------------------------------


def capture_query(
    db: Database, qdef: QueryDef, params: Dict, pid: int = 0
) -> Tuple[List[RefBatch], List]:
    """Execute ``qdef`` once, recording its reference stream.

    Returns ``(batches, result_rows)``.  The database's runtime state
    (hint bits, locks) is reset first so the capture equals the first
    run of an experiment repetition.
    """
    db.reset_runtime()
    ctx = ExecContext(db, pid, pid)
    gen = run_query(ctx, qdef.relations(db), qdef.factory(db, ctx, params))
    batches: List[RefBatch] = []
    result = None
    try:
        while True:
            ev = next(gen)
            if isinstance(ev, RefBatch):
                if len(ev):
                    batches.append(ev)
            elif isinstance(ev, SpinAcquire):
                if ev.lock.holder is not None:
                    raise TraceError(
                        f"lock {ev.lock.name} is contended (held by pid "
                        f"{ev.lock.holder}): capture_query bakes lock "
                        "references into a flat single-backend trace and "
                        "cannot record a wait — use capture_workload(), "
                        "whose per-process tapes record the acquire as an "
                        "interleave point and recompute contention at replay"
                    )
                ev.lock.holder = pid
                ev.lock.n_acquires += 1
                batches.append(
                    single(ev.lock.addr, write=True, instrs=14, cls=DataClass.LOCK)
                )
            elif isinstance(ev, SpinRelease):
                ev.lock.holder = None
                batches.append(
                    single(ev.lock.addr, write=True, instrs=8, cls=DataClass.LOCK)
                )
            elif isinstance(ev, Compute):
                # Pure compute: attribute the instructions to the hot
                # private expression-scratch line.
                batches.append(
                    single(
                        ctx.ws.qual_addr,
                        write=False,
                        instrs=ev.instrs,
                        cls=DataClass.PRIVATE,
                    )
                )
            elif isinstance(ev, Sleep):
                raise TraceError("unexpected sleep during uncontended capture")
            else:
                raise TraceError(f"unknown event {ev!r} during capture")
    except StopIteration as stop:
        result = stop.value
    return batches, result


class ReplayResult:
    """Outcome of a trace replay."""

    __slots__ = ("cycles", "instructions", "stats")

    def __init__(self, cycles: int, instructions: int, stats: CpuMemStats) -> None:
        self.cycles = cycles
        self.instructions = instructions
        self.stats = stats

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def replay_trace(
    db: Database,
    batches: List[RefBatch],
    machine: MachineConfig,
    cpu: int = 0,
) -> ReplayResult:
    """Drive a captured trace through ``machine``'s memory system.

    ``machine`` must already be scaled; the database supplies the
    address space so segment classification and NUMA homing resolve
    exactly as in the live run.  The capturing backend's private
    workspace segment is (re)materialized first — the bump allocator is
    deterministic, so a freshly rebuilt database reproduces the same
    addresses the capture recorded.
    """
    db.shmem.private(cpu, cpu)
    memsys = MemorySystem(machine, db.aspace)
    processor = Processor(cpu, machine, memsys)
    clock = 0
    for batch in batches:
        clock += processor.run_batch(batch, clock)
    return ReplayResult(clock, processor.instrs_retired, memsys.stats[cpu])
