"""Data-class taxonomy for memory references.

The paper explains every cache result in terms of four kinds of DBMS
data (§3.3): *record* data (heap pages, streamed), *index* data (B-tree
pages, reused near the root), *metadata* (buffer headers, catalog, lock
tables — the write-shared communication component), and *private* data
(per-process executor state).  We add an explicit *lock* class for the
spinlock words themselves so the migratory-optimization story of Fig. 9
can be analyzed separately.
"""

from __future__ import annotations

from enum import IntEnum


class DataClass(IntEnum):
    """Classification of a memory reference by the data it touches."""

    RECORD = 0
    INDEX = 1
    META = 2
    LOCK = 3
    PRIVATE = 4


#: Number of distinct data classes (sizing for per-class counter arrays).
NUM_CLASSES = len(DataClass)

#: Short human-readable labels, indexed by DataClass value.
CLASS_NAMES = ("record", "index", "meta", "lock", "private")


def class_name(cls: int) -> str:
    """Label for a data-class code; accepts raw ints from counter arrays."""
    return CLASS_NAMES[int(cls)]
