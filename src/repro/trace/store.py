"""Persistent, content-addressed workload-trace store.

An M-machine sweep executes every workload M times even though the
*executor's emission* — the per-process reference tapes captured by
:mod:`repro.trace.capture` — is identical on every machine (emission
depends only on the instruction-cost model and database state, never
on cache geometry or protocol).  :class:`TraceStore` persists each
captured :class:`~repro.trace.capture.WorkloadTrace` next to the
result cache so a grid executes each workload once and *replays* it on
every other machine.

Keying deliberately differs from :func:`repro.core.resultcache
.spec_fingerprint`: a trace is addressed by the **workload** alone
(query, process count, repetitions, parameter mode, dataset) plus the
code version — ``platform``, ``sim`` and ``verify_results`` are
excluded, because one tape serves both machines, either fast-path
setting, and any simulator configuration.  That exclusion is the whole
point of the store.

On-disk format: one ``<fingerprint>.trace.npz`` per workload.  Each
per-(rep, pid) tape is flattened to parallel event arrays (an op code
and an integer argument per event) with the reference columns of all
batches concatenated — addresses delta-encoded, which compresses the
executor's stride-heavy walks extremely well.  The codec lives in
:func:`tape_to_arrays`/:func:`arrays_to_tape` so the differential
fuzzer can round-trip synthetic tapes through literal store bytes.

Failure policy mirrors :class:`~repro.core.resultcache.ResultCache`:
truncated files, garbage bytes, bad headers and version-mismatched
entries all degrade to a miss (the sweep re-captures) with a counted
:class:`TraceStoreWarning` — never a crash, never a wrong result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
import zipfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import TraceError
from ..tpch.datagen import TPCHConfig
from .capture import TapeOp, WorkloadTrace
from .stream import RefBatch

#: Trace store format version; bump on any codec change.
TRACE_FORMAT = 1

#: Event op codes (the ``ops`` array of the flattened tape).
OP_BATCH, OP_ACQUIRE, OP_RELEASE, OP_COMPUTE = 0, 1, 2, 3


class TraceStoreWarning(UserWarning):
    """A stored trace could not be used (corrupt, stale, or rejected
    at replay); the workload degrades to re-capture."""


def workload_fingerprint(spec) -> str:
    """Stable content address for one *workload* (not one cell).

    Hashes the trace format, the ``repro`` code version, and exactly
    the spec fields that shape the executor's emission.  ``platform``,
    ``sim``, and ``verify_results`` are deliberately absent — the same
    trace replays on every machine model.
    """
    from ..core.resultcache import code_version

    payload = {
        "kind": "workload-trace",
        "format": TRACE_FORMAT,
        "code": code_version(),
        "workload": {
            "query": spec.query,
            "n_procs": spec.n_procs,
            "repetitions": spec.repetitions,
            "param_mode": spec.param_mode,
            "tpch": asdict(spec.tpch),
        },
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


# -- tape codec -------------------------------------------------------------

def tape_to_arrays(tape: List[TapeOp], lock_index: Dict[str, int]) -> Dict[str, np.ndarray]:
    """Flatten one per-process tape into parallel NumPy arrays.

    Returns ``ops`` (uint8 op code per event), ``args`` (int64: batch
    length / lock index / compute instructions), the four reference
    columns of every batch concatenated in tape order (``addrs``
    delta-encoded), and ``hints`` as ``(batch_ordinal, ref_idx, relid,
    row_idx)`` int64 rows.
    """
    ops: List[int] = []
    args: List[int] = []
    addrs: List[int] = []
    writes: List[bool] = []
    instrs: List[int] = []
    classes: List[int] = []
    hints: List[Tuple[int, int, int, int]] = []
    n_batches = 0
    for kind, arg in tape:
        if kind == "batch":
            ops.append(OP_BATCH)
            args.append(len(arg))
            addrs.extend(arg.addrs)
            writes.extend(arg.writes)
            instrs.extend(arg.instrs)
            classes.extend(arg.classes)
            if arg.hints:
                for ref_idx, relid, row_idx in arg.hints:
                    hints.append((n_batches, ref_idx, relid, row_idx))
            n_batches += 1
        elif kind == "acquire":
            ops.append(OP_ACQUIRE)
            args.append(lock_index[arg])
        elif kind == "release":
            ops.append(OP_RELEASE)
            args.append(lock_index[arg])
        elif kind == "compute":
            ops.append(OP_COMPUTE)
            args.append(arg)
        else:  # pragma: no cover - capture validates op kinds
            raise TraceError(f"unknown tape op {kind!r}")
    a = np.asarray(addrs, dtype=np.int64)
    return {
        "ops": np.asarray(ops, dtype=np.uint8),
        "args": np.asarray(args, dtype=np.int64),
        "addrs": np.diff(a, prepend=np.int64(0)),
        "writes": np.asarray(writes, dtype=np.bool_),
        "instrs": np.asarray(instrs, dtype=np.int64),
        "classes": np.asarray(classes, dtype=np.uint8),
        "hints": np.asarray(hints, dtype=np.int64).reshape(len(hints), 4),
    }


def arrays_to_tape(arrays: Dict[str, np.ndarray], lock_names: List[str]) -> List[TapeOp]:
    """Inverse of :func:`tape_to_arrays`.

    Rebuilt batches are NumPy-born (:meth:`RefBatch.from_columns` over
    zero-copy slices of the decoded columns), so a decoded trace feeds
    the vectorized kernel without a list detour.  Raises
    :class:`TraceError` on structural nonsense (op codes out of range,
    column lengths disagreeing with batch sizes) so the store can
    degrade to a miss.
    """
    ops = arrays["ops"]
    args = arrays["args"]
    if ops.ndim != 1 or ops.shape != args.shape:
        raise TraceError("tape event arrays must be parallel 1-D")
    addrs = np.cumsum(arrays["addrs"], dtype=np.int64)
    writes = arrays["writes"]
    instrs = arrays["instrs"]
    classes = arrays["classes"]
    n_refs = addrs.shape[0]
    if not (writes.shape[0] == instrs.shape[0] == classes.shape[0] == n_refs):
        raise TraceError("trace reference columns have unequal lengths")

    hint_rows = arrays["hints"]
    hints_by_batch: Dict[int, List[Tuple[int, int, int]]] = {}
    for b, ref_idx, relid, row_idx in hint_rows.tolist():
        hints_by_batch.setdefault(b, []).append((ref_idx, relid, row_idx))

    tape: List[TapeOp] = []
    pos = 0
    n_batches = 0
    for op, arg in zip(ops.tolist(), args.tolist()):
        if op == OP_BATCH:
            end = pos + arg
            if arg < 0 or end > n_refs:
                raise TraceError("batch length exceeds stored columns")
            batch = RefBatch.from_columns(
                addrs[pos:end],
                writes[pos:end],
                instrs[pos:end],
                classes[pos:end],
                hints=hints_by_batch.get(n_batches),
            )
            tape.append(("batch", batch))
            pos = end
            n_batches += 1
        elif op == OP_ACQUIRE or op == OP_RELEASE:
            if not 0 <= arg < len(lock_names):
                raise TraceError(f"lock index {arg} out of range")
            kind = "acquire" if op == OP_ACQUIRE else "release"
            tape.append((kind, lock_names[arg]))
        elif op == OP_COMPUTE:
            tape.append(("compute", arg))
        else:
            raise TraceError(f"unknown tape op code {op}")
    if pos != n_refs:
        raise TraceError("stored columns longer than batches account for")
    return tape


def trace_to_npz_dict(trace: WorkloadTrace) -> Dict[str, np.ndarray]:
    """Serialize a whole workload trace to ``np.savez``-able arrays."""
    from ..core.resultcache import code_version

    lock_names = sorted(trace.locks)
    lock_index = {name: i for i, name in enumerate(lock_names)}
    meta = {
        "format": TRACE_FORMAT,
        "code": code_version(),
        "query": trace.query,
        "n_procs": trace.n_procs,
        "repetitions": trace.repetitions,
        "param_mode": trace.param_mode,
        "tpch": asdict(trace.tpch),
        "query_rows": trace.query_rows,
        "locks": {name: trace.locks[name] for name in lock_names},
    }
    out: Dict[str, np.ndarray] = {
        "meta": np.asarray(json.dumps(meta, sort_keys=True))
    }
    for rep, procs in enumerate(trace.tapes):
        for pid, tape in enumerate(procs):
            for key, arr in tape_to_arrays(tape, lock_index).items():
                out[f"r{rep}p{pid}:{key}"] = arr
    return out


def trace_from_npz(data) -> WorkloadTrace:
    """Rebuild a :class:`WorkloadTrace` from a loaded ``.npz`` mapping.

    Raises :class:`TraceError` for anything structurally wrong and
    lets container-level errors (``zipfile.BadZipFile``, ``KeyError``
    for missing members, JSON errors) propagate for the store to
    classify.
    """
    meta = json.loads(str(data["meta"]))
    if not isinstance(meta, dict):
        raise TraceError("trace meta is not an object")
    lock_names = sorted(meta["locks"])
    tapes = [
        [
            arrays_to_tape(
                {k: data[f"r{rep}p{pid}:{k}"]
                 for k in ("ops", "args", "addrs", "writes", "instrs", "classes", "hints")},
                lock_names,
            )
            for pid in range(meta["n_procs"])
        ]
        for rep in range(meta["repetitions"])
    ]
    return WorkloadTrace(
        query=meta["query"],
        n_procs=meta["n_procs"],
        repetitions=meta["repetitions"],
        param_mode=meta["param_mode"],
        tpch=TPCHConfig(**meta["tpch"]),
        locks={str(k): int(v) for k, v in meta["locks"].items()},
        query_rows=[int(r) for r in meta["query_rows"]],
        tapes=tapes,
    )


class TraceStore:
    """On-disk workload-trace store: one ``.npz`` file per workload.

    Decoded traces are deliberately *not* memoized in memory.  A tape
    is hundreds of thousands of small objects; keeping every decoded
    workload resident makes each full (gen-2) garbage collection walk
    all of them for the rest of the sweep — measured at several
    seconds per grid, dwarfing the ~tens of milliseconds an ``.npz``
    decode costs.  Re-decoding per cell keeps the resident set one
    tape deep.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else default_trace_dir()
        self.hits = 0
        self.misses = 0
        #: Entries that existed but could not be decoded (truncated,
        #: garbage bytes, structural nonsense).
        self.corrupt = 0
        #: Well-formed entries written by a different code/format
        #: version, plus traces discarded after a replay-time rejection.
        self.stale = 0

    def _path(self, spec) -> Path:
        return self.directory / f"{workload_fingerprint(spec)}.trace.npz"

    def get(self, spec) -> Optional[WorkloadTrace]:
        """Load the stored trace for ``spec``'s workload, or ``None``.

        A broken entry is never fatal: truncated/garbage/stale files
        degrade to a miss with a counted :class:`TraceStoreWarning`,
        and the caller re-captures.
        """
        from ..core.resultcache import code_version

        fp = workload_fingerprint(spec)
        path = self.directory / f"{fp}.trace.npz"
        if not path.exists():
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                if not isinstance(meta, dict):
                    raise TraceError("trace meta is not an object")
                if (
                    meta.get("format") != TRACE_FORMAT
                    or meta.get("code") != code_version()
                ):
                    return self._reject(
                        path, "stale",
                        f"written by code={meta.get('code')!r} "
                        f"format={meta.get('format')!r}",
                    )
                trace = trace_from_npz(data)
        except (
            TraceError,
            OSError,
            ValueError,
            KeyError,
            IndexError,
            EOFError,
            TypeError,
            zipfile.BadZipFile,
        ) as exc:
            return self._reject(path, "corrupt", str(exc) or type(exc).__name__)
        if not trace.matches(spec):
            # A fingerprint collision or a file copied across cache
            # dirs; either way this tape is not this workload's.
            return self._reject(path, "corrupt", "trace does not match workload")
        self.hits += 1
        return trace

    def put(self, spec, trace: WorkloadTrace) -> Path:
        """Persist a captured trace (unique tmp + atomic rename).

        The tmp file is per-writer (``mkstemp`` opens it O_EXCL): two
        hosts capturing the same workload against a shared store race
        benignly — last rename wins with a complete archive — where a
        shared ``.tmp`` name would interleave their bytes into a torn
        file."""
        fp = workload_fingerprint(spec)
        path = self.directory / f"{fp}.trace.npz"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(f, **trace_to_npz_dict(trace))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def discard(self, spec, reason: str) -> None:
        """Drop a stored trace that was rejected at replay time (stale
        lock addresses, mismatched shape) so the re-capture that follows
        overwrites it."""
        fp = workload_fingerprint(spec)
        path = self.directory / f"{fp}.trace.npz"
        try:
            path.unlink()
        except OSError:
            pass
        self.stale += 1
        warnings.warn(
            f"trace store: discarded {path.name} ({reason}); re-capturing",
            TraceStoreWarning,
            stacklevel=2,
        )

    def _reject(self, path: Path, kind: str, why: str) -> None:
        """Count a bad entry as a miss; warn (stale entries warn only
        on the first occurrence — a code edit retires every trace at
        once, and one summary line beats thirty)."""
        self.misses += 1
        first_stale = kind == "stale" and self.stale == 0
        setattr(self, kind, getattr(self, kind) + 1)
        if kind == "corrupt" or first_stale:
            warnings.warn(
                f"trace store: {kind} entry {path.name} ignored ({why})",
                TraceStoreWarning,
                stacklevel=3,
            )
        return None

    @property
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stale": self.stale,
        }

    def describe(self) -> str:
        extra = ""
        if self.corrupt or self.stale:
            extra = f" ({self.corrupt} corrupt, {self.stale} stale)"
        return (
            f"trace store {self.directory}: "
            f"{self.hits} hits, {self.misses} misses{extra}"
        )

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.trace.npz"))
        except OSError:
            return 0


def default_trace_dir() -> Path:
    """``<result-cache dir>/traces`` — traces live next to results."""
    from ..core.resultcache import default_cache_dir

    return default_cache_dir() / "traces"
