"""Synthetic sharing-trace generation for the verification fuzzer.

The differential fuzzer (:mod:`repro.verify.fuzz`) needs workloads
that exercise every coherence corner — migratory lock handoffs,
write-shared metadata, read-shared index pages, streaming private scans
— without paying for a TPC-H database build per round.  This module
generates such traces synthetically: a seeded RNG draws classified
:class:`~repro.trace.stream.RefBatch` streams, one per CPU, over a
small purpose-built :class:`~repro.trace.address.AddressSpace` whose
segments mirror the §3.3 data-class taxonomy.

Generation is a pure function of :class:`SyntheticSpec`, so a failing
round is reproducible from its seed alone, and the shrinker can re-run
reduced traces deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .address import AddressSpace
from .classify import DataClass
from .stream import Ref, RefBatch

#: Pattern weights: (pattern, relative probability).  Patterns map to
#: the paper's data classes; ``lock`` emits a read-modify-write pair so
#: migratory detection has something to find.
_PATTERNS: Tuple[Tuple[str, int], ...] = (
    ("private", 30),
    ("stream", 20),
    ("shared_read", 25),
    ("hot_write", 15),
    ("lock", 10),
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Everything that determines one synthetic trace, seed included."""

    seed: int
    n_cpus: int = 4
    n_batches: int = 10          # per CPU
    refs_per_batch: int = 40
    n_shared_lines: int = 24     # per shared segment
    n_private_lines: int = 32    # per CPU
    n_locks: int = 4
    p_write: float = 0.3         # write probability for non-lock refs
    #: Address pool granularity.  128 B (the largest coherence line in
    #: any machine model) guarantees distinct pool slots are distinct
    #: coherence lines on both platforms.
    line_size: int = 128
    #: Weight of the ``l2_reuse`` pattern: a cyclic walk over a per-CPU
    #: private pool sized to overflow the (scaled) L1 while fitting the
    #: L2, so revisits produce clean L2 hits — the branch the batched
    #: engine resolves inline on two-level machines.  ``0`` (the
    #: default) disables the pattern *and* its segments, keeping traces
    #: for pre-existing specs byte-identical.
    w_l2_reuse: int = 0
    #: Weight of the ``upgrade`` pattern: read-then-write pairs on a
    #: mostly-per-CPU slice of a shared pool, driving silent E->M
    #: upgrades (and, on the cross-CPU picks, S-write upgrade
    #: transactions).  ``0`` disables it, as above.
    w_upgrade: int = 0
    n_l2_pool_lines: int = 96    # per CPU, used when w_l2_reuse > 0
    n_upgrade_lines: int = 8     # per CPU, used when w_upgrade > 0

    def __post_init__(self) -> None:
        if self.n_cpus < 1 or self.n_batches < 0 or self.refs_per_batch < 1:
            raise ValueError("malformed SyntheticSpec")
        if self.w_l2_reuse < 0 or self.w_upgrade < 0:
            raise ValueError("pattern weights must be >= 0")


def build_address_space(spec: SyntheticSpec) -> AddressSpace:
    """The segment layout the generated trace references."""
    aspace = AddressSpace()
    size = spec.n_shared_lines * spec.line_size
    aspace.alloc("syn.record", size, DataClass.RECORD, shared=True)
    aspace.alloc("syn.index", size, DataClass.INDEX, shared=True)
    aspace.alloc("syn.meta", size, DataClass.META, shared=True)
    aspace.alloc(
        "syn.lock", spec.n_locks * spec.line_size, DataClass.LOCK, shared=True
    )
    for cpu in range(spec.n_cpus):
        aspace.alloc(
            f"syn.private{cpu}",
            spec.n_private_lines * spec.line_size,
            DataClass.PRIVATE,
            shared=False,
            owner_cpu=cpu,
        )
    # Knob-gated segments go *after* the original layout so traces for
    # specs with the knobs off keep their exact historical addresses.
    if spec.w_upgrade > 0:
        aspace.alloc(
            "syn.upgrade",
            spec.n_upgrade_lines * spec.n_cpus * spec.line_size,
            DataClass.META,
            shared=True,
        )
    if spec.w_l2_reuse > 0:
        for cpu in range(spec.n_cpus):
            aspace.alloc(
                f"syn.l2pool{cpu}",
                spec.n_l2_pool_lines * spec.line_size,
                DataClass.PRIVATE,
                shared=False,
                owner_cpu=cpu,
            )
    return aspace


def generate(spec: SyntheticSpec) -> Tuple[AddressSpace, List[List[RefBatch]]]:
    """Generate ``(address_space, batches)``, ``batches[cpu]`` being the
    ordered :class:`RefBatch` stream CPU ``cpu`` executes."""
    aspace = build_address_space(spec)
    rng = random.Random(spec.seed)
    record = aspace.segment("syn.record")
    index = aspace.segment("syn.index")
    meta = aspace.segment("syn.meta")
    lock = aspace.segment("syn.lock")
    privates = [aspace.segment(f"syn.private{c}") for c in range(spec.n_cpus)]

    patterns = [p for p, _ in _PATTERNS]
    weights = [w for _, w in _PATTERNS]
    if spec.w_upgrade > 0:
        upgrade_seg = aspace.segment("syn.upgrade")
        patterns.append("upgrade")
        weights.append(spec.w_upgrade)
    if spec.w_l2_reuse > 0:
        l2pools = [aspace.segment(f"syn.l2pool{c}") for c in range(spec.n_cpus)]
        patterns.append("l2_reuse")
        weights.append(spec.w_l2_reuse)
    step = spec.line_size
    cursors = [0] * spec.n_cpus  # per-CPU streaming position
    l2_cursors = [0] * spec.n_cpus  # per-CPU l2_reuse walk position
    out: List[List[RefBatch]] = []
    for cpu in range(spec.n_cpus):
        batches: List[RefBatch] = []
        for _ in range(spec.n_batches):
            refs: List[Ref] = []
            while len(refs) < spec.refs_per_batch:
                pat = rng.choices(patterns, weights)[0]
                instrs = rng.randint(1, 6)
                if pat == "private":
                    addr = privates[cpu].base + step * rng.randrange(
                        spec.n_private_lines
                    )
                    refs.append((addr, rng.random() < spec.p_write, instrs,
                                 int(DataClass.PRIVATE)))
                elif pat == "stream":
                    addr = record.base + step * (cursors[cpu] % spec.n_shared_lines)
                    cursors[cpu] += 1
                    refs.append((addr, False, instrs, int(DataClass.RECORD)))
                elif pat == "shared_read":
                    # Zipf-ish reuse near the "root" of the pool.
                    slot = min(
                        rng.randrange(spec.n_shared_lines),
                        rng.randrange(spec.n_shared_lines),
                    )
                    refs.append((index.base + step * slot, False, instrs,
                                 int(DataClass.INDEX)))
                elif pat == "hot_write":
                    slot = rng.randrange(spec.n_shared_lines)
                    refs.append((meta.base + step * slot,
                                 rng.random() < 0.7, instrs,
                                 int(DataClass.META)))
                elif pat == "upgrade":
                    # Read-then-write: the read installs the line (E on
                    # the private-slice picks, S on cross-CPU overlap),
                    # the write then upgrades it — silently for E,
                    # through the directory for S.
                    if rng.random() < 0.9:
                        slot = cpu * spec.n_upgrade_lines + rng.randrange(
                            spec.n_upgrade_lines
                        )
                    else:
                        slot = rng.randrange(spec.n_upgrade_lines * spec.n_cpus)
                    addr = upgrade_seg.base + step * slot
                    refs.append((addr, False, instrs, int(DataClass.META)))
                    refs.append((addr, True, 2, int(DataClass.META)))
                elif pat == "l2_reuse":
                    # Cyclic walk: once the pool has been visited, every
                    # revisit has fallen out of a small L1 but sits in
                    # the L2 — a clean L2 hit (or an occasional dirty
                    # one, via the rare writes).
                    slot = l2_cursors[cpu] % spec.n_l2_pool_lines
                    l2_cursors[cpu] += 1
                    addr = l2pools[cpu].base + step * slot
                    refs.append((addr, rng.random() < 0.15, instrs,
                                 int(DataClass.PRIVATE)))
                else:  # lock: read-modify-write on a contended word
                    addr = lock.base + step * rng.randrange(spec.n_locks)
                    refs.append((addr, False, instrs, int(DataClass.LOCK)))
                    refs.append((addr, True, 2, int(DataClass.LOCK)))
            refs = refs[: spec.refs_per_batch]
            batches.append(batch_from_refs(refs))
        out.append(batches)
    return aspace, out


def batch_from_refs(refs: Sequence[Ref]) -> RefBatch:
    """Build a :class:`RefBatch` from ``(addr, write, instrs, cls)``
    tuples (also used by the shrinker to rebuild reduced batches)."""
    return RefBatch(
        [r[0] for r in refs],
        [r[1] for r in refs],
        [r[2] for r in refs],
        [r[3] for r in refs],
    )


def count_refs(trace: List[List[RefBatch]]) -> int:
    """Total references across every CPU's stream."""
    return sum(len(b) for batches in trace for b in batches)
