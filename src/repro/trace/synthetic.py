"""Synthetic sharing-trace generation for the verification fuzzer.

The differential fuzzer (:mod:`repro.verify.fuzz`) needs workloads
that exercise every coherence corner — migratory lock handoffs,
write-shared metadata, read-shared index pages, streaming private scans
— without paying for a TPC-H database build per round.  This module
generates such traces synthetically: a seeded RNG draws classified
:class:`~repro.trace.stream.RefBatch` streams, one per CPU, over a
small purpose-built :class:`~repro.trace.address.AddressSpace` whose
segments mirror the §3.3 data-class taxonomy.

Generation is a pure function of :class:`SyntheticSpec`, so a failing
round is reproducible from its seed alone, and the shrinker can re-run
reduced traces deterministically.

Streams are generated **columnarly**: each batch draws its pattern
choices, instruction counts, slots and write flags as NumPy arrays,
expands the read-modify-write pairs with ``np.repeat``, and freezes the
result via :meth:`RefBatch.from_columns` — no per-reference Python list
append.  Generation used to dominate small-budget fuzz campaigns and
benchmark setup; columnar batches also enter the simulator in exactly
the form the vectorized kernel wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .address import AddressSpace
from .classify import DataClass
from .stream import Ref, RefBatch

#: Pattern weights: (pattern, relative probability).  Patterns map to
#: the paper's data classes; ``lock`` emits a read-modify-write pair so
#: migratory detection has something to find.
_PATTERNS: Tuple[Tuple[str, int], ...] = (
    ("private", 30),
    ("stream", 20),
    ("shared_read", 25),
    ("hot_write", 15),
    ("lock", 10),
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Everything that determines one synthetic trace, seed included."""

    seed: int
    n_cpus: int = 4
    n_batches: int = 10          # per CPU
    refs_per_batch: int = 40
    n_shared_lines: int = 24     # per shared segment
    n_private_lines: int = 32    # per CPU
    n_locks: int = 4
    p_write: float = 0.3         # write probability for non-lock refs
    #: Address pool granularity.  128 B (the largest coherence line in
    #: any machine model) guarantees distinct pool slots are distinct
    #: coherence lines on both platforms.
    line_size: int = 128
    #: Weight of the ``l2_reuse`` pattern: a cyclic walk over a per-CPU
    #: private pool sized to overflow the (scaled) L1 while fitting the
    #: L2, so revisits produce clean L2 hits — the branch the batched
    #: engine resolves inline on two-level machines.  ``0`` (the
    #: default) disables the pattern *and* its segments, keeping the
    #: address-space layout for pre-existing specs identical.
    w_l2_reuse: int = 0
    #: Weight of the ``upgrade`` pattern: read-then-write pairs on a
    #: mostly-per-CPU slice of a shared pool, driving silent E->M
    #: upgrades (and, on the cross-CPU picks, S-write upgrade
    #: transactions).  ``0`` disables it, as above.
    w_upgrade: int = 0
    n_l2_pool_lines: int = 96    # per CPU, used when w_l2_reuse > 0
    n_upgrade_lines: int = 8     # per CPU, used when w_upgrade > 0

    def __post_init__(self) -> None:
        if self.n_cpus < 1 or self.n_batches < 0 or self.refs_per_batch < 1:
            raise ValueError("malformed SyntheticSpec")
        if self.w_l2_reuse < 0 or self.w_upgrade < 0:
            raise ValueError("pattern weights must be >= 0")


def build_address_space(spec: SyntheticSpec) -> AddressSpace:
    """The segment layout the generated trace references."""
    aspace = AddressSpace()
    size = spec.n_shared_lines * spec.line_size
    aspace.alloc("syn.record", size, DataClass.RECORD, shared=True)
    aspace.alloc("syn.index", size, DataClass.INDEX, shared=True)
    aspace.alloc("syn.meta", size, DataClass.META, shared=True)
    aspace.alloc(
        "syn.lock", spec.n_locks * spec.line_size, DataClass.LOCK, shared=True
    )
    for cpu in range(spec.n_cpus):
        aspace.alloc(
            f"syn.private{cpu}",
            spec.n_private_lines * spec.line_size,
            DataClass.PRIVATE,
            shared=False,
            owner_cpu=cpu,
        )
    # Knob-gated segments go *after* the original layout so traces for
    # specs with the knobs off keep their exact historical addresses.
    if spec.w_upgrade > 0:
        aspace.alloc(
            "syn.upgrade",
            spec.n_upgrade_lines * spec.n_cpus * spec.line_size,
            DataClass.META,
            shared=True,
        )
    if spec.w_l2_reuse > 0:
        for cpu in range(spec.n_cpus):
            aspace.alloc(
                f"syn.l2pool{cpu}",
                spec.n_l2_pool_lines * spec.line_size,
                DataClass.PRIVATE,
                shared=False,
                owner_cpu=cpu,
            )
    return aspace


def generate(spec: SyntheticSpec) -> Tuple[AddressSpace, List[List[RefBatch]]]:
    """Generate ``(address_space, batches)``, ``batches[cpu]`` being the
    ordered :class:`RefBatch` stream CPU ``cpu`` executes.

    Each batch is drawn as whole columns: one vector of pattern picks,
    one of instruction counts, then per-pattern masked slot/write draws,
    with the lock/upgrade read-modify-write pairs expanded by
    ``np.repeat`` and the batch truncated to ``refs_per_batch``.  A
    single seeded :class:`numpy.random.Generator` drives every draw, so
    the trace remains a pure function of the spec.
    """
    aspace = build_address_space(spec)
    rng = np.random.default_rng(spec.seed)
    record = aspace.segment("syn.record")
    index = aspace.segment("syn.index")
    meta = aspace.segment("syn.meta")
    lock = aspace.segment("syn.lock")
    privates = [aspace.segment(f"syn.private{c}") for c in range(spec.n_cpus)]

    weights = [w for _, w in _PATTERNS]
    # Pattern codes: 0..4 = the legacy five, 5 = upgrade, 6 = l2_reuse.
    PRIVATE, STREAM, SHARED_READ, HOT_WRITE, LOCK, UPGRADE, L2_REUSE = range(7)
    if spec.w_upgrade > 0:
        upgrade_seg = aspace.segment("syn.upgrade")
        weights.append(spec.w_upgrade)
    else:
        weights.append(0)
    if spec.w_l2_reuse > 0:
        l2pools = [aspace.segment(f"syn.l2pool{c}") for c in range(spec.n_cpus)]
        weights.append(spec.w_l2_reuse)
    else:
        weights.append(0)
    probs = np.asarray(weights, dtype=np.float64)
    probs /= probs.sum()
    #: Pairs (lock, upgrade) emit two refs per pick.
    is_pair_code = np.zeros(7, dtype=np.bool_)
    is_pair_code[LOCK] = is_pair_code[UPGRADE] = True
    cls_of_code = np.array(
        [
            int(DataClass.PRIVATE),
            int(DataClass.RECORD),
            int(DataClass.INDEX),
            int(DataClass.META),
            int(DataClass.LOCK),
            int(DataClass.META),
            int(DataClass.PRIVATE),
        ],
        dtype=np.uint8,
    )
    step = spec.line_size
    B = spec.refs_per_batch
    n_shared = spec.n_shared_lines
    cursors = [0] * spec.n_cpus  # per-CPU streaming position
    l2_cursors = [0] * spec.n_cpus  # per-CPU l2_reuse walk position
    out: List[List[RefBatch]] = []
    for cpu in range(spec.n_cpus):
        batches: List[RefBatch] = []
        for _ in range(spec.n_batches):
            pats = rng.choice(7, size=B, p=probs)
            instrs = rng.integers(1, 7, size=B, dtype=np.int64)
            addrs = np.zeros(B, dtype=np.int64)
            writes = np.zeros(B, dtype=np.bool_)
            m = pats == PRIVATE
            k = int(np.count_nonzero(m))
            if k:
                addrs[m] = privates[cpu].base + step * rng.integers(
                    0, spec.n_private_lines, size=k
                )
                writes[m] = rng.random(k) < spec.p_write
            m = pats == STREAM
            k = int(np.count_nonzero(m))
            if k:
                # sequential walk: occurrence order continues the cursor
                pos = (cursors[cpu] + np.arange(k)) % n_shared
                cursors[cpu] += k
                addrs[m] = record.base + step * pos
            m = pats == SHARED_READ
            k = int(np.count_nonzero(m))
            if k:
                # Zipf-ish reuse near the "root" of the pool
                slot = np.minimum(
                    rng.integers(0, n_shared, size=k),
                    rng.integers(0, n_shared, size=k),
                )
                addrs[m] = index.base + step * slot
            m = pats == HOT_WRITE
            k = int(np.count_nonzero(m))
            if k:
                addrs[m] = meta.base + step * rng.integers(0, n_shared, size=k)
                writes[m] = rng.random(k) < 0.7
            m = pats == LOCK
            k = int(np.count_nonzero(m))
            if k:  # read-modify-write on a contended word (pair below)
                addrs[m] = lock.base + step * rng.integers(
                    0, spec.n_locks, size=k
                )
            m = pats == UPGRADE
            k = int(np.count_nonzero(m))
            if k:
                # Read-then-write: the read installs the line (E on the
                # private-slice picks, S on cross-CPU overlap), the
                # write then upgrades it — silently for E, through the
                # directory for S.
                own = cpu * spec.n_upgrade_lines + rng.integers(
                    0, spec.n_upgrade_lines, size=k
                )
                anyslot = rng.integers(
                    0, spec.n_upgrade_lines * spec.n_cpus, size=k
                )
                slot = np.where(rng.random(k) < 0.9, own, anyslot)
                addrs[m] = upgrade_seg.base + step * slot
            m = pats == L2_REUSE
            k = int(np.count_nonzero(m))
            if k:
                # Cyclic walk: once the pool has been visited, every
                # revisit has fallen out of a small L1 but sits in the
                # L2 — a clean L2 hit (or an occasional dirty one).
                pos = (l2_cursors[cpu] + np.arange(k)) % spec.n_l2_pool_lines
                l2_cursors[cpu] += k
                addrs[m] = l2pools[cpu].base + step * pos
                writes[m] = rng.random(k) < 0.15
            # Expand read-modify-write pairs: the second reference
            # repeats the address as a 2-instruction write.
            is_pair = is_pair_code[pats]
            counts = 1 + is_pair.astype(np.int64)
            e_addrs = np.repeat(addrs, counts)
            e_writes = np.repeat(writes, counts)
            e_instrs = np.repeat(instrs, counts)
            e_cls = np.repeat(cls_of_code[pats], counts)
            second = (np.cumsum(counts) - 1)[is_pair]
            e_writes[second] = True
            e_instrs[second] = 2
            batches.append(
                RefBatch.from_columns(
                    e_addrs[:B], e_writes[:B], e_instrs[:B], e_cls[:B]
                )
            )
        out.append(batches)
    return aspace, out


def batch_from_refs(refs: Sequence[Ref]) -> RefBatch:
    """Build a :class:`RefBatch` from ``(addr, write, instrs, cls)``
    tuples (also used by the shrinker to rebuild reduced batches)."""
    return RefBatch(
        [r[0] for r in refs],
        [r[1] for r in refs],
        [r[2] for r in refs],
        [r[3] for r in refs],
    )


def count_refs(trace: List[List[RefBatch]]) -> int:
    """Total references across every CPU's stream."""
    return sum(len(b) for batches in trace for b in batches)
