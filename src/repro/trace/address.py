"""Simulated shared physical address space.

Every piece of simulated state that can be cached — heap pages, index
pages, buffer headers, lock words, private executor scratch — lives in
a single flat 64-bit address space carved into *segments*.  A segment
records its data class, whether it is shared, and (for ccNUMA machines)
which node its memory is homed on.

Addresses are plain Python ints (byte granularity); the memory system
masks them down to cache-line granularity itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import TraceError
from ..units import round_up
from .classify import DataClass

#: Alignment of every segment start.  Using the largest coherence-line
#: size in any machine model (Origin L2: 128 B) keeps one line from
#: spanning two segments with different data classes.
SEGMENT_ALIGN = 128


@dataclass(frozen=True)
class Segment:
    """A contiguous, classified region of the simulated address space."""

    name: str
    base: int
    size: int
    cls: DataClass
    shared: bool
    #: For private segments: the CPU whose process owns the data.
    owner_cpu: Optional[int] = None
    #: ccNUMA home node; ``None`` means "use the machine's default
    #: placement policy" (UMA machines ignore it entirely).
    home_node: Optional[int] = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """Bump allocator handing out non-overlapping classified segments.

    The allocator is deliberately append-only: the DBMS substrate
    allocates its shared memory once at startup, exactly like
    PostgreSQL's ``ShmemAlloc``.
    """

    def __init__(self) -> None:
        self._next = SEGMENT_ALIGN  # keep address 0 unmapped
        self._segments: List[Segment] = []
        self._by_name: Dict[str, Segment] = {}

    def alloc(
        self,
        name: str,
        size: int,
        cls: DataClass,
        *,
        shared: bool = True,
        owner_cpu: Optional[int] = None,
        home_node: Optional[int] = None,
    ) -> Segment:
        """Allocate a new segment and return it.

        Raises :class:`TraceError` on duplicate names or nonpositive
        sizes so layout bugs surface immediately.
        """
        if size <= 0:
            raise TraceError(f"segment {name!r}: size must be positive, got {size}")
        if name in self._by_name:
            raise TraceError(f"segment {name!r} already allocated")
        base = self._next
        seg = Segment(
            name=name,
            base=base,
            size=size,
            cls=cls,
            shared=shared,
            owner_cpu=owner_cpu,
            home_node=home_node,
        )
        self._next = round_up(base + size, SEGMENT_ALIGN)
        self._segments.append(seg)
        self._by_name[name] = seg
        return seg

    def segment(self, name: str) -> Segment:
        """Look up a segment by name; raises :class:`TraceError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TraceError(f"no segment named {name!r}") from None

    def find(self, addr: int) -> Segment:
        """Find the segment containing ``addr`` (binary search by base)."""
        segs = self._segments
        lo, hi = 0, len(segs)
        while lo < hi:
            mid = (lo + hi) // 2
            seg = segs[mid]
            if addr < seg.base:
                hi = mid
            elif addr >= seg.end:
                lo = mid + 1
            else:
                return seg
        raise TraceError(f"address {addr:#x} is not in any segment")

    @property
    def segments(self) -> List[Segment]:
        """All segments in allocation order (do not mutate)."""
        return self._segments

    @property
    def total_allocated(self) -> int:
        """Bytes handed out so far, including alignment padding."""
        return self._next - SEGMENT_ALIGN
