"""Address space, data-class taxonomy, and memory-reference streams."""

from .address import SEGMENT_ALIGN, AddressSpace, Segment
from .classify import CLASS_NAMES, NUM_CLASSES, DataClass, class_name
from .stream import RefBatch, RefBuilder, single
from .tracefile import load_trace, save_trace

# NOTE: trace.capture sits above the cpu/db layers and must be imported
# as `repro.trace.capture` directly; re-exporting it here would create
# an import cycle (capture -> cpu -> mem -> trace).

__all__ = [
    "AddressSpace",
    "Segment",
    "SEGMENT_ALIGN",
    "DataClass",
    "NUM_CLASSES",
    "CLASS_NAMES",
    "class_name",
    "RefBatch",
    "RefBuilder",
    "single",
    "save_trace",
    "load_trace",
]
