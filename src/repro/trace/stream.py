"""Memory-reference batches.

The DBMS executor is *execution driven*: it runs real query plans over
real generated data and, as a side effect, emits the memory references
a native PostgreSQL process would issue.  References are grouped into
small :class:`RefBatch` objects (typically one per heap/index page
visited) so the scheduler can interleave concurrent query processes at
a granularity fine enough for lock contention and cache coherence to be
causally meaningful.

A reference is the 4-tuple ``(byte address, is_write, instructions
executed since previous reference, data class)``.  The instruction count
is how CPI accounting works: the cost model charges base cycles for the
instructions and adds the memory stall the reference incurs.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import TraceError
from .classify import DataClass

Ref = Tuple[int, bool, int, int]


class RefBatch:
    """An immutable batch of classified memory references.

    Stored as parallel Python lists: the simulator's inner loop iterates
    them with ``zip``, which profiling showed beats per-element NumPy
    indexing by a wide margin for the batch sizes we use (tens to a few
    hundred references).
    """

    __slots__ = ("addrs", "writes", "instrs", "classes", "total_instrs")

    def __init__(
        self,
        addrs: Sequence[int],
        writes: Sequence[bool],
        instrs: Sequence[int],
        classes: Sequence[int],
    ) -> None:
        n = len(addrs)
        if not (len(writes) == len(instrs) == len(classes) == n):
            raise TraceError("RefBatch fields must have equal lengths")
        self.addrs: List[int] = list(addrs)
        self.writes: List[bool] = list(writes)
        self.instrs: List[int] = list(instrs)
        self.classes: List[int] = [int(c) for c in classes]
        self.total_instrs = sum(self.instrs)

    @classmethod
    def take(
        cls,
        addrs: List[int],
        writes: List[bool],
        instrs: List[int],
        classes: List[int],
    ) -> "RefBatch":
        """Ownership-transfer constructor for the builder hot path.

        The caller hands over already-normalized parallel lists (ints
        in ``classes``, equal lengths) and must not mutate them
        afterwards; no copies or casts are performed.  The DBMS
        executor builds hundreds of thousands of batches per cell, so
        skipping the four defensive list copies of ``__init__`` is a
        measurable win.
        """
        batch = object.__new__(cls)
        batch.addrs = addrs
        batch.writes = writes
        batch.instrs = instrs
        batch.classes = classes
        batch.total_instrs = sum(instrs)
        return batch

    def __len__(self) -> int:
        return len(self.addrs)

    def __iter__(self) -> Iterator[Ref]:
        return zip(self.addrs, self.writes, self.instrs, self.classes)

    def to_numpy(self) -> dict:
        """Columnar NumPy view (copies) for analysis and trace files."""
        return {
            "addrs": np.asarray(self.addrs, dtype=np.int64),
            "writes": np.asarray(self.writes, dtype=np.bool_),
            "instrs": np.asarray(self.instrs, dtype=np.int64),
            "classes": np.asarray(self.classes, dtype=np.uint8),
        }

    @classmethod
    def from_numpy(cls, cols: dict) -> "RefBatch":
        return cls(
            cols["addrs"].tolist(),
            cols["writes"].tolist(),
            cols["instrs"].tolist(),
            cols["classes"].tolist(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RefBatch(n={len(self)}, instrs={self.total_instrs})"


class RefBuilder:
    """Mutable accumulator used by the executor to assemble a RefBatch."""

    __slots__ = ("_addrs", "_writes", "_instrs", "_classes")

    def __init__(self) -> None:
        self._addrs: List[int] = []
        self._writes: List[bool] = []
        self._instrs: List[int] = []
        self._classes: List[int] = []

    def add(self, addr: int, write: bool, instrs: int, cls: DataClass) -> None:
        """Append one reference preceded by ``instrs`` instructions."""
        self._addrs.append(addr)
        self._writes.append(write)
        self._instrs.append(instrs)
        self._classes.append(int(cls))

    def add_many(
        self, addrs: Sequence[int], write: bool, instrs: int, cls: DataClass
    ) -> None:
        """Append several references sharing one write/instrs/class.

        Equivalent to calling :meth:`add` once per address, but
        bulk-extends the parallel lists — the shape of B+-tree probe
        and scratch-ring emission, which the index-heavy queries issue
        per tuple.
        """
        n = len(addrs)
        self._addrs.extend(addrs)
        self._writes.extend([write] * n)
        self._instrs.extend([instrs] * n)
        self._classes.extend([int(cls)] * n)

    def touch_range(
        self,
        base: int,
        nbytes: int,
        cls: DataClass,
        *,
        stride: int = 32,
        instrs_per_touch: int = 4,
        write: bool = False,
    ) -> None:
        """Touch ``nbytes`` starting at ``base`` once per ``stride`` bytes.

        Models a streaming access (e.g. scanning the bytes of a tuple);
        the default 32-byte stride matches the smallest line size of the
        machines under study, so every distinct line is referenced.
        """
        if nbytes <= 0:
            return
        # Align the walk so a range always touches the line containing
        # its last byte.  Bulk-extend the parallel lists instead of one
        # ``add`` call per touch: range scans dominate reference volume
        # for the scan-heavy DSS queries, so this is the builder's hot
        # path.
        touches = range(base, base + nbytes, stride)
        n = len(touches)
        self._addrs.extend(touches)
        self._writes.extend([write] * n)
        self._instrs.extend([instrs_per_touch] * n)
        self._classes.extend([int(cls)] * n)

    def __len__(self) -> int:
        return len(self._addrs)

    @property
    def total_instrs(self) -> int:
        return sum(self._instrs)

    def build(self) -> RefBatch:
        """Freeze into a RefBatch and reset the builder.

        Ownership of the accumulated lists transfers to the batch
        (:meth:`RefBatch.take`); the builder re-arms with fresh lists,
        so nothing else can alias the frozen batch's storage.
        """
        batch = RefBatch.take(self._addrs, self._writes, self._instrs, self._classes)
        self._addrs, self._writes = [], []
        self._instrs, self._classes = [], []
        return batch


def single(addr: int, *, write: bool, instrs: int, cls: DataClass) -> RefBatch:
    """Convenience constructor for a one-reference batch."""
    return RefBatch([addr], [write], [instrs], [int(cls)])


def coalesce(batches: Sequence[RefBatch], target_refs: int = 256) -> List[RefBatch]:
    """Merge consecutive batches until each chunk holds >= ``target_refs``
    references (the final chunk may be smaller).

    Larger chunks amortize the per-batch dispatch overhead of
    ``MemorySystem.access_batch``.  **This changes scheduling
    granularity**: the OS model delivers one batch per kernel event and
    checks preemption between batches, so coalescing is only valid on
    paths with no scheduler in the loop — single-CPU trace replay,
    synthetic-trace-driven microbenchmarks, and the differential fuzzer's
    ``drive_trace``.  The multiprocess executors keep their natural
    per-page emission so golden metrics are untouched.
    """
    out: List[RefBatch] = []
    addrs: List[int] = []
    writes: List[bool] = []
    instrs: List[int] = []
    classes: List[int] = []
    for b in batches:
        addrs.extend(b.addrs)
        writes.extend(b.writes)
        instrs.extend(b.instrs)
        classes.extend(b.classes)
        if len(addrs) >= target_refs:
            out.append(RefBatch.take(addrs, writes, instrs, classes))
            addrs, writes, instrs, classes = [], [], [], []
    if addrs:
        out.append(RefBatch.take(addrs, writes, instrs, classes))
    return out
