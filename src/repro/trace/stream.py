"""Memory-reference batches.

The DBMS executor is *execution driven*: it runs real query plans over
real generated data and, as a side effect, emits the memory references
a native PostgreSQL process would issue.  References are grouped into
small :class:`RefBatch` objects (typically one per heap/index page
visited) so the scheduler can interleave concurrent query processes at
a granularity fine enough for lock contention and cache coherence to be
causally meaningful.

A reference is the 4-tuple ``(byte address, is_write, instructions
executed since previous reference, data class)``.  The instruction count
is how CPI accounting works: the cost model charges base cycles for the
instructions and adds the memory stall the reference incurs.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import TraceError
from .classify import DataClass

Ref = Tuple[int, bool, int, int]


class RefBatch:
    """An immutable batch of classified memory references.

    Stored as parallel Python lists: the simulator's inner loop iterates
    them with ``zip``, which profiling showed beats per-element NumPy
    indexing by a wide margin for the batch sizes we use (tens to a few
    hundred references).
    """

    __slots__ = ("addrs", "writes", "instrs", "classes", "total_instrs")

    def __init__(
        self,
        addrs: Sequence[int],
        writes: Sequence[bool],
        instrs: Sequence[int],
        classes: Sequence[int],
    ) -> None:
        n = len(addrs)
        if not (len(writes) == len(instrs) == len(classes) == n):
            raise TraceError("RefBatch fields must have equal lengths")
        self.addrs: List[int] = list(addrs)
        self.writes: List[bool] = list(writes)
        self.instrs: List[int] = list(instrs)
        self.classes: List[int] = [int(c) for c in classes]
        self.total_instrs = sum(self.instrs)

    def __len__(self) -> int:
        return len(self.addrs)

    def __iter__(self) -> Iterator[Ref]:
        return zip(self.addrs, self.writes, self.instrs, self.classes)

    def to_numpy(self) -> dict:
        """Columnar NumPy view (copies) for analysis and trace files."""
        return {
            "addrs": np.asarray(self.addrs, dtype=np.int64),
            "writes": np.asarray(self.writes, dtype=np.bool_),
            "instrs": np.asarray(self.instrs, dtype=np.int64),
            "classes": np.asarray(self.classes, dtype=np.uint8),
        }

    @classmethod
    def from_numpy(cls, cols: dict) -> "RefBatch":
        return cls(
            cols["addrs"].tolist(),
            cols["writes"].tolist(),
            cols["instrs"].tolist(),
            cols["classes"].tolist(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RefBatch(n={len(self)}, instrs={self.total_instrs})"


class RefBuilder:
    """Mutable accumulator used by the executor to assemble a RefBatch."""

    __slots__ = ("_addrs", "_writes", "_instrs", "_classes")

    def __init__(self) -> None:
        self._addrs: List[int] = []
        self._writes: List[bool] = []
        self._instrs: List[int] = []
        self._classes: List[int] = []

    def add(self, addr: int, write: bool, instrs: int, cls: DataClass) -> None:
        """Append one reference preceded by ``instrs`` instructions."""
        self._addrs.append(addr)
        self._writes.append(write)
        self._instrs.append(instrs)
        self._classes.append(int(cls))

    def touch_range(
        self,
        base: int,
        nbytes: int,
        cls: DataClass,
        *,
        stride: int = 32,
        instrs_per_touch: int = 4,
        write: bool = False,
    ) -> None:
        """Touch ``nbytes`` starting at ``base`` once per ``stride`` bytes.

        Models a streaming access (e.g. scanning the bytes of a tuple);
        the default 32-byte stride matches the smallest line size of the
        machines under study, so every distinct line is referenced.
        """
        if nbytes <= 0:
            return
        addr = base
        end = base + nbytes
        # Align the walk so a range always touches the line containing
        # its last byte.
        while addr < end:
            self.add(addr, write, instrs_per_touch, cls)
            addr += stride

    def __len__(self) -> int:
        return len(self._addrs)

    @property
    def total_instrs(self) -> int:
        return sum(self._instrs)

    def build(self) -> RefBatch:
        """Freeze into a RefBatch and reset the builder."""
        batch = RefBatch(self._addrs, self._writes, self._instrs, self._classes)
        self._addrs, self._writes = [], []
        self._instrs, self._classes = [], []
        return batch


def single(addr: int, *, write: bool, instrs: int, cls: DataClass) -> RefBatch:
    """Convenience constructor for a one-reference batch."""
    return RefBatch([addr], [write], [instrs], [int(cls)])
