"""Memory-reference batches.

The DBMS executor is *execution driven*: it runs real query plans over
real generated data and, as a side effect, emits the memory references
a native PostgreSQL process would issue.  References are grouped into
small :class:`RefBatch` objects (typically one per heap/index page
visited) so the scheduler can interleave concurrent query processes at
a granularity fine enough for lock contention and cache coherence to be
causally meaningful.

A reference is the 4-tuple ``(byte address, is_write, instructions
executed since previous reference, data class)``.  The instruction count
is how CPI accounting works: the cost model charges base cycles for the
instructions and adds the memory stall the reference incurs.

A batch is *dual form*: it can be born from parallel Python lists (the
executor's per-page emission, where list appends beat per-element NumPy
indexing by a wide margin) or from NumPy columns (synthetic traces,
trace files, replay).  Whichever representation a consumer asks for —
:attr:`RefBatch.addrs` and friends for the scalar simulation loop,
:meth:`RefBatch.columns` for the vectorized kernel and the on-disk
trace format — is derived lazily from the other and cached, so a batch
that never crosses worlds never pays a conversion.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TraceError
from .classify import DataClass

Ref = Tuple[int, bool, int, int]

#: Canonical dtypes of the four columns — shared by :meth:`RefBatch.columns`
#: and the ``.npz`` trace format (:mod:`repro.trace.tracefile`).
COLUMN_DTYPES = (np.int64, np.bool_, np.int64, np.uint8)


class RefBatch:
    """An immutable batch of classified memory references.

    ``hints`` is an optional side channel for trace replay: a sequence
    of ``(ref_index, relid, row_idx)`` marks identifying the references
    whose *write* flag was decided by the shared first-toucher hint-bit
    race (:meth:`ExecContext.hint_bit_write`).  That decision is the
    one interleaving-dependent part of the executor's emission, so a
    replayed batch re-resolves the marked flags against a replay-side
    hint set instead of trusting the flags baked in at capture time.
    The simulation paths never read ``hints``.
    """

    __slots__ = (
        "_addrs", "_writes", "_instrs", "_classes", "_cols", "_total", "hints"
    )

    def __init__(
        self,
        addrs: Sequence[int],
        writes: Sequence[bool],
        instrs: Sequence[int],
        classes: Sequence[int],
    ) -> None:
        n = len(addrs)
        if not (len(writes) == len(instrs) == len(classes) == n):
            raise TraceError("RefBatch fields must have equal lengths")
        self._addrs: Optional[List[int]] = list(addrs)
        self._writes: Optional[List[bool]] = list(writes)
        self._instrs: Optional[List[int]] = list(instrs)
        self._classes: Optional[List[int]] = [int(c) for c in classes]
        self._cols = None
        self._total: Optional[int] = sum(self._instrs)
        self.hints: Optional[Sequence[Tuple[int, int, int]]] = None

    @classmethod
    def take(
        cls,
        addrs: List[int],
        writes: List[bool],
        instrs: List[int],
        classes: List[int],
        hints: Optional[List[Tuple[int, int, int]]] = None,
    ) -> "RefBatch":
        """Ownership-transfer constructor for the builder hot path.

        The caller hands over already-normalized parallel lists (ints
        in ``classes``, equal lengths) and must not mutate them
        afterwards; no copies or casts are performed.  The DBMS
        executor builds hundreds of thousands of batches per cell, so
        skipping the four defensive list copies of ``__init__`` is a
        measurable win.
        """
        batch = object.__new__(cls)
        batch._addrs = addrs
        batch._writes = writes
        batch._instrs = instrs
        batch._classes = classes
        batch._cols = None
        batch._total = sum(instrs)
        batch.hints = hints
        return batch

    @classmethod
    def from_columns(
        cls,
        addrs: np.ndarray,
        writes: np.ndarray,
        instrs: np.ndarray,
        classes: np.ndarray,
        hints: Optional[Sequence[Tuple[int, int, int]]] = None,
    ) -> "RefBatch":
        """Ownership-transfer constructor from NumPy columns.

        Arrays are normalized to the canonical dtypes (zero-copy when
        they already match, as slices of a loaded trace file do) and
        must not be mutated by the caller afterwards.  The Python-list
        form is only materialized if a consumer asks for it.
        """
        cols = tuple(
            np.ascontiguousarray(c, dtype=dt)
            for c, dt in zip((addrs, writes, instrs, classes), COLUMN_DTYPES)
        )
        n = cols[0].shape[0]
        if any(c.ndim != 1 or c.shape[0] != n for c in cols):
            raise TraceError("RefBatch columns must be 1-D of equal lengths")
        batch = object.__new__(cls)
        batch._addrs = batch._writes = batch._instrs = batch._classes = None
        batch._cols = cols
        batch._total = None
        batch.hints = hints
        return batch

    @classmethod
    def take_columns(
        cls,
        addrs: np.ndarray,
        writes: np.ndarray,
        instrs: np.ndarray,
        classes: np.ndarray,
        hints: Optional[Sequence[Tuple[int, int, int]]] = None,
        total: Optional[int] = None,
    ) -> "RefBatch":
        """Ownership-transfer constructor from already-canonical columns.

        The columnar counterpart of :meth:`take`: the caller guarantees
        the invariants (canonical dtypes, equal-length 1-D arrays, no
        later mutation) and no casts or checks are performed.  Replay
        hint resolution rebuilds one batch per marked batch on the
        tape, so even :meth:`from_columns`'s no-op normalization calls
        are a measurable cost there.
        """
        batch = object.__new__(cls)
        batch._addrs = batch._writes = batch._instrs = batch._classes = None
        batch._cols = (addrs, writes, instrs, classes)
        batch._total = total
        batch.hints = hints
        return batch

    # -- representation conversion (lazy, cached) -------------------------
    def _materialize_lists(self) -> None:
        a, w, i, c = self._cols
        self._addrs = a.tolist()
        self._writes = w.tolist()
        self._instrs = i.tolist()
        self._classes = c.tolist()

    @property
    def addrs(self) -> List[int]:
        if self._addrs is None:
            self._materialize_lists()
        return self._addrs

    @property
    def writes(self) -> List[bool]:
        if self._writes is None:
            self._materialize_lists()
        return self._writes

    @property
    def instrs(self) -> List[int]:
        if self._instrs is None:
            self._materialize_lists()
        return self._instrs

    @property
    def classes(self) -> List[int]:
        if self._classes is None:
            self._materialize_lists()
        return self._classes

    @property
    def is_columnar(self) -> bool:
        """True when the batch currently holds only its NumPy form.
        Consumers that can work in either representation should branch
        on this and stay in column space — touching a list property on
        a columnar batch materializes all four Python lists."""
        return self._addrs is None

    @property
    def total_instrs(self) -> int:
        if self._total is None:
            self._total = int(self._cols[2].sum())
        return self._total

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(addrs, writes, instrs, classes)`` as NumPy arrays of the
        canonical dtypes.  Zero-copy for a NumPy-born batch; built once
        and cached for a list-born one.  Treat as read-only — the
        arrays may share storage with the batch itself."""
        if self._cols is None:
            self._cols = (
                np.asarray(self._addrs, dtype=np.int64),
                np.asarray(self._writes, dtype=np.bool_),
                np.asarray(self._instrs, dtype=np.int64),
                np.asarray(self._classes, dtype=np.uint8),
            )
        return self._cols

    def __len__(self) -> int:
        if self._addrs is not None:
            return len(self._addrs)
        return self._cols[0].shape[0]

    def __iter__(self) -> Iterator[Ref]:
        return zip(self.addrs, self.writes, self.instrs, self.classes)

    def to_numpy(self) -> dict:
        """Columnar NumPy form keyed by field name (analysis and trace
        files).  Copies, so callers may mutate freely."""
        a, w, i, c = self.columns()
        return {
            "addrs": a.copy(),
            "writes": w.copy(),
            "instrs": i.copy(),
            "classes": c.copy(),
        }

    @classmethod
    def from_numpy(cls, cols: dict) -> "RefBatch":
        return cls.from_columns(
            cols["addrs"], cols["writes"], cols["instrs"], cols["classes"]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RefBatch(n={len(self)}, instrs={self.total_instrs})"


class RefBuilder:
    """Mutable accumulator used by the executor to assemble a RefBatch."""

    __slots__ = ("_addrs", "_writes", "_instrs", "_classes", "_hints")

    def __init__(self) -> None:
        self._addrs: List[int] = []
        self._writes: List[bool] = []
        self._instrs: List[int] = []
        self._classes: List[int] = []
        self._hints: List[Tuple[int, int, int]] = []

    def add(self, addr: int, write: bool, instrs: int, cls: DataClass) -> None:
        """Append one reference preceded by ``instrs`` instructions."""
        self._addrs.append(addr)
        self._writes.append(write)
        self._instrs.append(instrs)
        self._classes.append(int(cls))

    def mark_hint(self, relid: int, row_idx: int) -> None:
        """Tag the most recently added reference as a hint-bit decision.

        The mark travels on the built batch (:attr:`RefBatch.hints`) so
        trace replay can re-run the first-toucher race for tuple
        ``(relid, row_idx)`` in delivery order instead of trusting the
        write flag baked in at capture time.
        """
        self._hints.append((len(self._addrs) - 1, relid, row_idx))

    def add_many(
        self, addrs: Sequence[int], write: bool, instrs: int, cls: DataClass
    ) -> None:
        """Append several references sharing one write/instrs/class.

        Equivalent to calling :meth:`add` once per address, but
        bulk-extends the parallel lists — the shape of B+-tree probe
        and scratch-ring emission, which the index-heavy queries issue
        per tuple.
        """
        n = len(addrs)
        self._addrs.extend(addrs)
        self._writes.extend([write] * n)
        self._instrs.extend([instrs] * n)
        self._classes.extend([int(cls)] * n)

    def touch_range(
        self,
        base: int,
        nbytes: int,
        cls: DataClass,
        *,
        stride: int = 32,
        instrs_per_touch: int = 4,
        write: bool = False,
    ) -> None:
        """Touch ``nbytes`` starting at ``base`` once per ``stride`` bytes.

        Models a streaming access (e.g. scanning the bytes of a tuple);
        the default 32-byte stride matches the smallest line size of the
        machines under study, so every distinct line is referenced.
        """
        if nbytes <= 0:
            return
        # Align the walk so a range always touches the line containing
        # its last byte.  Bulk-extend the parallel lists instead of one
        # ``add`` call per touch: range scans dominate reference volume
        # for the scan-heavy DSS queries, so this is the builder's hot
        # path.
        touches = range(base, base + nbytes, stride)
        n = len(touches)
        self._addrs.extend(touches)
        self._writes.extend([write] * n)
        self._instrs.extend([instrs_per_touch] * n)
        self._classes.extend([int(cls)] * n)

    def __len__(self) -> int:
        return len(self._addrs)

    @property
    def total_instrs(self) -> int:
        return sum(self._instrs)

    def build(self) -> RefBatch:
        """Freeze into a RefBatch and reset the builder.

        Ownership of the accumulated lists transfers to the batch
        (:meth:`RefBatch.take`); the builder re-arms with fresh lists,
        so nothing else can alias the frozen batch's storage.
        """
        batch = RefBatch.take(
            self._addrs,
            self._writes,
            self._instrs,
            self._classes,
            hints=self._hints or None,
        )
        self._addrs, self._writes = [], []
        self._instrs, self._classes = [], []
        if self._hints:
            self._hints = []
        return batch


def single(addr: int, *, write: bool, instrs: int, cls: DataClass) -> RefBatch:
    """Convenience constructor for a one-reference batch."""
    return RefBatch([addr], [write], [instrs], [int(cls)])


def coalesce(batches: Sequence[RefBatch], target_refs: int = 256) -> List[RefBatch]:
    """Merge consecutive batches until each chunk holds >= ``target_refs``
    references (the final chunk may be smaller).

    Larger chunks amortize the per-batch dispatch overhead of
    ``MemorySystem.access_batch`` (and give the vectorized kernel long
    enough runs to pay for its pre-pass).  **This changes scheduling
    granularity**: the OS model delivers one batch per kernel event and
    checks preemption between batches, so coalescing is only valid on
    paths with no scheduler in the loop — single-CPU trace replay,
    synthetic-trace-driven microbenchmarks, and the differential fuzzer's
    ``drive_trace``.  The multiprocess executors keep their natural
    per-page emission so golden metrics are untouched.
    """
    out: List[RefBatch] = []
    addrs: List[int] = []
    writes: List[bool] = []
    instrs: List[int] = []
    classes: List[int] = []
    for b in batches:
        addrs.extend(b.addrs)
        writes.extend(b.writes)
        instrs.extend(b.instrs)
        classes.extend(b.classes)
        if len(addrs) >= target_refs:
            out.append(RefBatch.take(addrs, writes, instrs, classes))
            addrs, writes, instrs, classes = [], [], [], []
    if addrs:
        out.append(RefBatch.take(addrs, writes, instrs, classes))
    return out
