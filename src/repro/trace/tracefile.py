"""Saving and replaying reference traces.

The paper's methodology is measurement of live runs, but a persisted
trace is invaluable for debugging the memory system in isolation (the
classic trace-driven mode of the cited Iyer et al. TPC-C study).  A
trace file is an ``.npz`` holding the concatenated columns of a list of
batches plus the batch boundaries, so replay preserves scheduling
granularity.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from ..errors import TraceError
from .stream import RefBatch

_MAGIC = "repro-trace-v1"


def save_trace(path: Union[str, Path], batches: List[RefBatch]) -> None:
    """Write ``batches`` to ``path`` as a compressed npz trace file."""
    if not batches:
        raise TraceError("refusing to save an empty trace")
    cols = [b.to_numpy() for b in batches]
    bounds = np.cumsum([len(b) for b in batches])
    np.savez_compressed(
        str(path),
        magic=np.array(_MAGIC),
        addrs=np.concatenate([c["addrs"] for c in cols]),
        writes=np.concatenate([c["writes"] for c in cols]),
        instrs=np.concatenate([c["instrs"] for c in cols]),
        classes=np.concatenate([c["classes"] for c in cols]),
        bounds=bounds,
    )


def load_trace(path: Union[str, Path]) -> List[RefBatch]:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(str(path), allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise TraceError(f"{path}: not a repro trace file")
        addrs = data["addrs"]
        writes = data["writes"]
        instrs = data["instrs"]
        classes = data["classes"]
        bounds = data["bounds"]
    batches: List[RefBatch] = []
    start = 0
    for end in bounds.tolist():
        batches.append(
            RefBatch(
                addrs[start:end].tolist(),
                writes[start:end].tolist(),
                instrs[start:end].tolist(),
                classes[start:end].tolist(),
            )
        )
        start = end
    return batches
