"""Saving and replaying reference traces.

The paper's methodology is measurement of live runs, but a persisted
trace is invaluable for debugging the memory system in isolation (the
classic trace-driven mode of the cited Iyer et al. TPC-C study).  A
trace file is an ``.npz`` holding the concatenated columns of a list of
batches plus the batch boundaries, so replay preserves scheduling
granularity.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from ..errors import TraceError
from .stream import RefBatch

_MAGIC = "repro-trace-v1"


def save_trace(path: Union[str, Path], batches: List[RefBatch]) -> None:
    """Write ``batches`` to ``path`` as a compressed npz trace file.

    The on-disk columns are exactly :data:`repro.trace.stream.COLUMN_DTYPES`
    — the same arrays :meth:`RefBatch.columns` exposes — so a NumPy-born
    batch round-trips without any per-reference conversion.
    """
    if not batches:
        raise TraceError("refusing to save an empty trace")
    cols = [b.columns() for b in batches]
    bounds = np.cumsum([len(b) for b in batches])
    np.savez_compressed(
        str(path),
        magic=np.array(_MAGIC),
        addrs=np.concatenate([c[0] for c in cols]),
        writes=np.concatenate([c[1] for c in cols]),
        instrs=np.concatenate([c[2] for c in cols]),
        classes=np.concatenate([c[3] for c in cols]),
        bounds=bounds,
    )


def load_trace(path: Union[str, Path]) -> List[RefBatch]:
    """Load a trace previously written by :func:`save_trace`.

    Batches are rebuilt as column slices of the loaded arrays
    (:meth:`RefBatch.from_columns`), so loading is O(batches), not
    O(references); the scalar list form materializes lazily only where
    a consumer iterates it.
    """
    with np.load(str(path), allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise TraceError(f"{path}: not a repro trace file")
        addrs = data["addrs"]
        writes = data["writes"]
        instrs = data["instrs"]
        classes = data["classes"]
        bounds = data["bounds"]
    batches: List[RefBatch] = []
    start = 0
    for end in bounds.tolist():
        batches.append(
            RefBatch.from_columns(
                addrs[start:end],
                writes[start:end],
                instrs[start:end],
                classes[start:end],
            )
        )
        start = end
    return batches
