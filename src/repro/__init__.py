"""repro — reproduction of "Comparing the Memory System Performance of
DSS Workloads on the HP V-Class and SGI Origin 2000" (IPPS 2002).

The package is an execution-driven multiprocessor memory-system
simulator: a PostgreSQL-like DBMS substrate runs real TPC-H queries on
generated data while every memory reference flows through full machine
models of the two platforms.  The public API most users want:

>>> from repro import run_experiment, ExperimentSpec
>>> result = run_experiment(ExperimentSpec(query="Q6", platform="hpv", n_procs=1))
>>> result.mean.cycles > 0
True

See README.md for the quickstart and DESIGN.md for the architecture.
"""

from ._version import __version__
from .config import DEFAULT_SIM, TEST_SIM, SimConfig
from .core.experiment import ExperimentResult, ExperimentSpec, run_experiment
from .core.figures import FIGURES, regenerate_figure
from .mem.machine import hp_v_class, platform, sgi_origin_2000
from .mem.registry import REGISTRY

__all__ = [
    "__version__",
    "SimConfig",
    "DEFAULT_SIM",
    "TEST_SIM",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "FIGURES",
    "regenerate_figure",
    "hp_v_class",
    "sgi_origin_2000",
    "platform",
    "REGISTRY",
]
