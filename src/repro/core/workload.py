"""Workload assembly: TPC-H query plans → OS processes.

Bridges the DBMS substrate and the OS model: builds the per-backend
execution context and the event-generator the kernel schedules, and
assembles the portable counter snapshot after a run (the moment the
original instrumented PostgreSQL read its hardware counters).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cpu.counters import CounterSnapshot
from ..db.engine import Database
from ..db.executor.context import ExecContext
from ..db.executor.plan import run_query
from ..mem.machine import MachineConfig
from ..mem.memsys import CpuMemStats
from ..obs import schema as _schema
from ..osim.process import SimProcess
from ..tpch.queries import QueryDef


def make_query_process(
    db: Database, qdef: QueryDef, params: Dict, pid: int, cpu: int
) -> Tuple[object, ExecContext]:
    """Build the event generator for one backend running ``qdef``."""
    ctx = ExecContext(db, pid, cpu)
    plan = qdef.factory(db, ctx, params)
    gen = run_query(ctx, qdef.relations(db), plan, lock_mode=qdef.lock_mode)
    return gen, ctx


def snapshot_process(
    proc: SimProcess, mem: CpuMemStats, machine: MachineConfig
) -> CounterSnapshot:
    """Read one backend's counters after its query completes.

    The flush is driven entirely by the counter schema: every
    :data:`~repro.obs.schema.SNAPSHOT_FIELDS` row names its source
    (process clock, processor, or memory-system accumulator), so a
    counter added to the schema is flushed here with no edit."""
    snap = CounterSnapshot()
    for f in _schema.SNAPSHOT_FIELDS:
        setattr(snap, f.name, _schema.snapshot_value(f, proc, mem))
    return snap
