"""Workload assembly: TPC-H query plans → OS processes.

Bridges the DBMS substrate and the OS model: builds the per-backend
execution context and the event-generator the kernel schedules, and
assembles the portable counter snapshot after a run (the moment the
original instrumented PostgreSQL read its hardware counters).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cpu.counters import CounterSnapshot
from ..db.engine import Database
from ..db.executor.context import ExecContext
from ..db.executor.plan import run_query
from ..mem.machine import MachineConfig
from ..mem.memsys import CpuMemStats
from ..osim.process import SimProcess
from ..trace.classify import CLASS_NAMES
from ..tpch.queries import QueryDef


def make_query_process(
    db: Database, qdef: QueryDef, params: Dict, pid: int, cpu: int
) -> Tuple[object, ExecContext]:
    """Build the event generator for one backend running ``qdef``."""
    ctx = ExecContext(db, pid, cpu)
    plan = qdef.factory(db, ctx, params)
    gen = run_query(ctx, qdef.relations(db), plan, lock_mode=qdef.lock_mode)
    return gen, ctx


def snapshot_process(
    proc: SimProcess, mem: CpuMemStats, machine: MachineConfig
) -> CounterSnapshot:
    """Read one backend's counters after its query completes."""
    snap = CounterSnapshot(
        cycles=proc.thread_cycles,
        instructions=proc.processor.instrs_retired,
        data_refs=mem.reads + mem.writes,
        level1_misses=mem.level1_misses,
        coherent_misses=mem.coherent_misses,
        mem_latency_cycles=mem.raw_latency_cycles,
        mem_accesses=mem.mem_accesses,
        stall_cycles=mem.stall_cycles,
        upgrades=mem.upgrades,
        vol_switches=proc.vol_switches,
        invol_switches=proc.invol_switches,
        miss_cold=mem.miss_kind[0],
        miss_capacity=mem.miss_kind[1],
        miss_comm=mem.miss_kind[2],
    )
    snap.level1_by_class = {
        CLASS_NAMES[i]: mem.level1_misses_by_class[i] for i in range(len(CLASS_NAMES))
    }
    snap.coherent_by_class = {
        CLASS_NAMES[i]: mem.coherent_misses_by_class[i] for i in range(len(CLASS_NAMES))
    }
    return snap
