"""Experiment runner — the paper's three-dimensional test matrix.

§2.3: "there are three orthogonal dimensions in our tests": the query
(Q6/Q21/Q12), the number of parallel query processes (1–8, each on its
own processor, all running the same query), and the platform (V-Class
or Origin 2000).  "For each configuration, we perform the same test
four times and use the average values."

:func:`run_experiment` executes one cell of that matrix; the sweep and
figure layers build the whole grid on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .._deprecations import keyword_only_init
from ..config import DEFAULT_SIM, SimConfig
from ..cpu.counters import CounterSnapshot
from ..db.engine import Database
from ..errors import ConfigError
from ..mem.machine import MachineConfig, platform
from ..mem.memsys import MemorySystem
from ..obs.bus import observed_run
from ..osim.scheduler import Kernel
from ..tpch.datagen import TPCHConfig, build_database
from ..tpch.qgen import random_params
from ..tpch.queries import QUERIES
from .workload import make_query_process, snapshot_process

#: Default dataset used by experiments (chosen so that, together with
#: the default 1/32 cache scaling, the paper's footprint/cache ratios
#: hold: database >> V-Class D-cache >> hot index+meta set > Origin L1).
DEFAULT_TPCH = TPCHConfig(sf=0.002, seed=19920101)


@keyword_only_init
@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of the paper's test matrix.

    Construct with keyword arguments; positional construction is
    deprecated (the field order is not API).
    """

    query: str = "Q6"
    platform: str = "hpv"
    n_procs: int = 1
    #: The paper averaged 4 runs; with a deterministic simulator and
    #: fixed parameters repeated runs are identical, so the default is
    #: 1.  Use ``param_mode="random"`` with more repetitions to emulate
    #: the original averaging over qgen parameter draws.
    repetitions: int = 1
    param_mode: str = "default"  # "default" | "random"
    tpch: TPCHConfig = DEFAULT_TPCH
    sim: SimConfig = DEFAULT_SIM
    verify_results: bool = True

    def __post_init__(self) -> None:
        if self.query not in QUERIES:
            raise ConfigError(f"unknown query {self.query!r}")
        if self.n_procs < 1:
            raise ConfigError("n_procs must be >= 1")
        if self.repetitions < 1:
            raise ConfigError("repetitions must be >= 1")
        if self.param_mode not in ("default", "random"):
            raise ConfigError("param_mode must be 'default' or 'random'")

    def with_(self, **kwargs) -> "ExperimentSpec":
        return replace(self, **kwargs)


@dataclass
class RunResult:
    """One repetition: per-process counters plus machine-level stats."""

    per_process: List[CounterSnapshot]
    wall_cycles: int
    interconnect_queue_delay_mean: float
    n_backoffs: int
    query_rows: int

    @property
    def mean(self) -> CounterSnapshot:
        out = CounterSnapshot()
        for s in self.per_process:
            out.add(s)
        return out.scaled(1.0 / len(self.per_process))


@dataclass
class ExperimentResult:
    """Averaged outcome of one experiment cell."""

    spec: ExperimentSpec
    machine: MachineConfig
    runs: List[RunResult] = field(default_factory=list)

    @property
    def mean(self) -> CounterSnapshot:
        """Per-process counters averaged over processes and repetitions."""
        out = CounterSnapshot()
        for run in self.runs:
            out.add(run.mean)
        return out.scaled(1.0 / len(self.runs))

    @property
    def total(self) -> CounterSnapshot:
        """Whole-machine counters for the first repetition."""
        out = CounterSnapshot()
        for s in self.runs[0].per_process:
            out.add(s)
        return out


class DatabaseCache:
    """Build each (sf, seed) database once per interpreter.

    Matches the original methodology: the database is loaded once, then
    queried under every configuration.
    """

    _cache: Dict[TPCHConfig, Database] = {}

    @classmethod
    def get(cls, cfg: TPCHConfig) -> Database:
        db = cls._cache.get(cfg)
        if db is None:
            db = build_database(cfg)
            cls._cache[cfg] = db
        return db

    @classmethod
    def clear(cls) -> None:
        cls._cache.clear()


def run_experiment(
    spec: ExperimentSpec,
    db: Optional[Database] = None,
    machine: Optional[MachineConfig] = None,
    sinks: Optional[List] = None,
    capture: Optional["WorkloadCaptureHook"] = None,
) -> ExperimentResult:
    """Run one experiment cell and return averaged counters.

    ``machine`` overrides the platform lookup with a custom (already
    scaled) machine model — the ablation benchmarks use this to study
    protocol and geometry variants the real vendors never shipped.

    ``sinks`` is an optional list of observer-bus sinks (profilers,
    trace exporters, invariant checkers — see :mod:`repro.obs`), each
    attached for the duration of every repetition's kernel run and
    routed to the memory system and/or scheduler by the events it
    implements.  With no sinks the run pays zero observation overhead.

    ``capture`` is an optional workload-capture hook
    (:class:`repro.trace.capture.WorkloadCapture`): each backend
    generator is wrapped by ``capture.record(rep, pid, gen)`` so its
    event stream is recorded as it executes, and
    ``capture.note_rep(rep, query_rows)`` is called after each
    repetition.  Capture is pure observation — the run's counters are
    identical with or without it.
    """
    qdef = QUERIES[spec.query]
    if qdef.mutates and spec.n_procs > 1:
        # Refresh streams are standalone in TPC-H (and their relation
        # locks are exclusive); concurrent mutating backends would just
        # deadlock on the lock manager.
        raise ConfigError(f"{spec.query} mutates the database; n_procs must be 1")
    if db is None and not qdef.mutates:
        db = DatabaseCache.get(spec.tpch)
    if machine is None:
        machine = platform(spec.platform).scaled(spec.sim.cache_scale_log2)
    if spec.n_procs > machine.n_cpus:
        raise ConfigError(
            f"{spec.n_procs} processes exceed {machine.name}'s {machine.n_cpus} CPUs"
        )
    result = ExperimentResult(spec=spec, machine=machine)

    for rep in range(spec.repetitions):
        if qdef.mutates and (db is None or rep > 0):
            # fresh instance per repetition so every repetition mutates
            # identical state (never the shared cache)
            db = build_database(spec.tpch)
        if spec.param_mode == "random":
            params = random_params(spec.query, spec.tpch.seed + rep)
        else:
            params = qdef.params()
        expected = (
            qdef.reference(db, params)
            if spec.verify_results and qdef.mutates
            else None
        )
        memsys = MemorySystem(machine, db.aspace, fast_path=spec.sim.fast_path)
        kernel = Kernel(machine, memsys, spec.sim)
        db.reset_runtime()
        backoffs_before = sum(l.n_backoffs for l in db.shmem._locks.values())
        for pid in range(spec.n_procs):
            gen, _ctx = make_query_process(db, qdef, params, pid, cpu=pid)
            if capture is not None:
                gen = capture.record(rep, pid, gen)
            kernel.spawn(gen, cpu=pid)
        if sinks:
            with observed_run(memsys, kernel, sinks):
                kernel.run()
        else:
            kernel.run()

        if spec.verify_results and (rep == 0 or qdef.mutates):
            if expected is None:
                expected = qdef.reference(db, params)
            for proc in kernel.processes:
                _check_result(spec.query, proc.result, expected)

        snaps = [
            snapshot_process(proc, memsys.stats[proc.cpu], machine)
            for proc in kernel.processes
        ]
        n_backoffs = (
            sum(lock.n_backoffs for lock in db.shmem._locks.values())
            - backoffs_before
        )
        query_rows = len(kernel.processes[0].result or [])
        if capture is not None:
            capture.note_rep(rep, query_rows)
        result.runs.append(
            RunResult(
                per_process=snaps,
                wall_cycles=kernel.wall_cycles(),
                interconnect_queue_delay_mean=memsys.interconnect.mean_queue_delay,
                n_backoffs=n_backoffs,
                query_rows=query_rows,
            )
        )
    return result


def _check_result(query: str, got, expected) -> None:
    from ..errors import ReproError

    if got is None:
        raise ReproError(f"{query}: process produced no result")
    if _normalize(got) != _normalize(expected):
        raise ReproError(
            f"{query}: executor result diverges from reference "
            f"(got {len(got)} rows, expected {len(expected)} rows)"
        )


def _round(v):
    return round(v, 4) if isinstance(v, float) else v


def _normalize(rows) -> List:
    return sorted(tuple(_round(v) for v in row) for row in rows)
