"""Resilience layer for long sweep campaigns.

The paper's result grid is a multi-cell campaign (query x platform x
n_procs), and long campaigns are exactly where partial failure
dominates: workers die, cells hang, results arrive mangled, machines
get rebooted mid-run.  This module gives the sweep engine everything it
needs to *finish anyway*:

* :class:`RetryPolicy` — bounded exponential backoff whose jitter is a
  pure function of ``(seed, cell, attempt)``, so two runs of the same
  campaign schedule byte-identical retry delays.
* :class:`FaultPlan` — a deterministic fault-injection harness.  A plan
  serialized into the ``REPRO_FAULT_INJECT`` environment variable makes
  worker processes crash (``os._exit``), hang (sleep), or return
  corrupted results, with the victim cells selected by a seeded hash of
  the cell identity and each fault recorded in an on-disk *ledger* so a
  cell faults at most ``max_hits`` times and every retry path is
  exercised end-to-end in CI.
* :class:`CheckpointManifest` — a small JSON manifest persisted next to
  the :class:`~repro.core.resultcache.ResultCache` recording per-cell
  sweep progress.  After a ``kill -9``, ``repro sweep --resume`` reads
  it (and the cache) and recomputes only unfinished cells,
  bitwise-identical to an uninterrupted run.
* :func:`validate_result` — the structural checks the engine applies to
  every result crossing a process boundary, so a corrupted payload is a
  retryable fault rather than a poisoned grid.
* :class:`SweepReport` / :class:`CellFailure` — the structured outcome
  of a resilient sweep: cells that exhausted their retries are
  *quarantined* into ``failed`` and the sweep completes instead of
  aborting.

The engine that consumes all of this lives in
:class:`repro.core.parallel.ParallelSweepRunner.execute`; retries,
timeouts, quarantines, and degradations are published as
:data:`~repro.obs.bus.SWEEP_EVENTS` on the observer bus.

Fault classification
--------------------
Application exceptions raised *inside* a cell (bad spec, simulator
bug) are deterministic — a pure function of the spec — so retrying
them is wasted work: they quarantine immediately with kind
``"error"``.  Infrastructure faults — a dead worker (``"crash"``), an
expired chunk deadline (``"timeout"``), a result failing validation
(``"corrupt"``) — are transient and retried under the
:class:`RetryPolicy` before quarantine.
"""

from __future__ import annotations

import copy
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .experiment import ExperimentResult, ExperimentSpec, run_experiment
from .resultcache import ResultCache
from .sweep import CellKey

#: Environment variable a serialized :class:`FaultPlan` travels in.
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Exit status a crash fault dies with (distinguishable from a real
#: SIGKILL in the ledger-less worst case).
CRASH_EXIT = 23

#: Fault classes a :class:`FaultPlan` can inject.
FAULT_KINDS = ("crash", "hang", "corrupt")


def cell_id(spec: ExperimentSpec) -> str:
    """The cell identity string fault selection and manifests key on:
    ``query:platform:n_procs:repetitions:param_mode``."""
    return (
        f"{spec.query}:{spec.platform}:{spec.n_procs}"
        f":{spec.repetitions}:{spec.param_mode}"
    )


def key_str(key: CellKey) -> str:
    """Manifest/ledger form of a :data:`CellKey` (same shape as
    :func:`cell_id` but computed without building a spec)."""
    return ":".join(str(part) for part in key)


def _unit_fraction(*parts) -> float:
    """Deterministic hash of ``parts`` mapped into ``[0, 1)``."""
    blob = ":".join(str(p) for p in parts).encode()
    return int(hashlib.sha256(blob).hexdigest()[:8], 16) / float(1 << 32)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``delay_s(attempt, token)`` grows as ``base_delay_s * 2**(attempt-1)``,
    caps at ``max_delay_s``, and is shrunk by up to ``jitter_frac`` by a
    hash of ``(seed, token, attempt)`` — deterministic per cell and
    attempt, so a re-run of the same campaign schedules identical
    delays while concurrent cells still decorrelate.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter_frac: float = 0.25
    seed: int = 0xB0FF

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigError("need 0 <= base_delay_s <= max_delay_s")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigError("jitter_frac must be in [0, 1]")

    def delay_s(self, attempt: int, token: str) -> float:
        """Backoff before retry number ``attempt`` (1-based) of the cell
        identified by ``token``."""
        raw = self.base_delay_s * (2.0 ** max(0, attempt - 1))
        capped = min(raw, self.max_delay_s)
        return capped * (1.0 - self.jitter_frac * _unit_fraction(
            self.seed, token, attempt
        ))


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for sweep workers.

    A plan names one fault ``kind`` (:data:`FAULT_KINDS`) and selects
    victim cells by a seeded hash of their :func:`cell_id` (``rate``),
    optionally narrowed to ids containing ``match``.  Every fired fault
    appends a file to the ``ledger`` directory first, and a cell whose
    ledger already holds ``max_hits`` entries is left alone — which is
    what lets a retried cell eventually succeed, deterministically.

    ``scope="worker"`` (the default) arms the plan only inside sweep
    workers — multiprocessing pool children and ``repro worker`` host
    processes (which set ``REPRO_WORKER=1``) — so a sweep that degrades
    to in-process serial execution escapes the injected faults —
    exactly the behaviour graceful degradation is for.  ``scope="any"``
    also arms the main process (used by the resume-after-kill tests to
    freeze a serial CLI sweep at a chosen cell).
    """

    kind: str
    ledger: str
    rate: float = 1.0
    seed: int = 0
    max_hits: int = 1
    scope: str = "worker"
    hang_s: float = 600.0
    match: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"fault kind must be one of {FAULT_KINDS}")
        if self.scope not in ("worker", "any"):
            raise ConfigError("fault scope must be 'worker' or 'any'")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError("fault rate must be in [0, 1]")
        if not self.ledger:
            raise ConfigError("fault plan needs a ledger directory")

    # -- env transport ------------------------------------------------------
    def to_env(self) -> str:
        """Serialize for :data:`FAULT_ENV` (JSON)."""
        return json.dumps({
            "kind": self.kind, "ledger": self.ledger, "rate": self.rate,
            "seed": self.seed, "max_hits": self.max_hits,
            "scope": self.scope, "hang_s": self.hang_s, "match": self.match,
        })

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse a plan from its :meth:`to_env` form."""
        try:
            d = json.loads(value)
            if not isinstance(d, dict):
                raise ValueError("not a JSON object")
        except ValueError as exc:
            raise ConfigError(f"bad {FAULT_ENV} value: {exc}") from None
        return cls(**d)

    # -- selection ----------------------------------------------------------
    def armed(self) -> bool:
        """Is the plan active in *this* process (scope check)?"""
        if self.scope == "any":
            return True
        if os.environ.get("REPRO_WORKER") == "1":
            return True  # a `repro worker` host process
        return multiprocessing.parent_process() is not None

    def _hits(self, cid: str) -> int:
        try:
            return sum(
                1 for _ in Path(self.ledger).glob(f"{cid}.hit.*")
            )
        except OSError:
            return 0

    def _record(self, cid: str) -> None:
        root = Path(self.ledger)
        root.mkdir(parents=True, exist_ok=True)
        for n in range(10_000):
            entry = root / f"{cid}.hit.{os.getpid()}.{n}"
            try:
                entry.touch(exist_ok=False)
                return
            except FileExistsError:
                continue

    def should_fire(self, spec: ExperimentSpec) -> bool:
        """Does the plan target this cell, here, now?"""
        if not self.armed():
            return False
        cid = cell_id(spec)
        if self.match and self.match not in cid:
            return False
        if self.rate < 1.0 and _unit_fraction(self.seed, cid) >= self.rate:
            return False
        return self._hits(cid) < self.max_hits

    # -- execution ----------------------------------------------------------
    def inject_before(self, spec: ExperimentSpec) -> None:
        """Fire a crash/hang fault (if armed and selected) before the
        cell runs.  A crash never returns; a hang sleeps ``hang_s`` and
        then lets the cell proceed (the parent's deadline fires first)."""
        if self.kind not in ("crash", "hang") or not self.should_fire(spec):
            return
        self._record(cell_id(spec))
        if self.kind == "crash":
            os._exit(CRASH_EXIT)
        time.sleep(self.hang_s)

    def inject_after(
        self, spec: ExperimentSpec, result: ExperimentResult
    ) -> ExperimentResult:
        """Return ``result``, or a corrupted copy of it when a corrupt
        fault fires (the original — and anything cached — stays good:
        this models transport corruption, not bad computation)."""
        if self.kind != "corrupt" or not self.should_fire(spec):
            return result
        self._record(cell_id(spec))
        mangled = copy.deepcopy(result)
        mangled.runs[0].wall_cycles = -1 - mangled.runs[0].wall_cycles
        return mangled


_plan_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def current_fault_plan() -> Optional[FaultPlan]:
    """The :class:`FaultPlan` in :data:`FAULT_ENV`, or ``None`` (parsed
    once per distinct env value)."""
    global _plan_cache
    raw = os.environ.get(FAULT_ENV)
    if _plan_cache[0] != raw:
        _plan_cache = (raw, FaultPlan.from_env(raw) if raw else None)
    return _plan_cache[1]


def run_cell_guarded(
    spec: ExperimentSpec,
    cache: Optional[ResultCache] = None,
    trace_store=None,
) -> Tuple[ExperimentResult, str]:
    """Run (or load, or replay) one cell under the ambient
    :class:`FaultPlan`.

    This is the single choke point both the in-process serial path and
    the worker chunk loop go through, so fault injection exercises the
    exact production code path.  Returns ``(result, source)`` where
    ``source`` records how the cell was satisfied: ``"cache"`` (result
    cache hit), ``"ran"`` (direct execution), or — with a
    ``trace_store`` (:class:`~repro.trace.store.TraceStore`) —
    ``"captured"`` (executed while recording its workload tape) or
    ``"replay"`` (tape replayed through this cell's machine, executor
    skipped).  A freshly-computed result is written to ``cache``
    *before* corrupt injection — the cache never holds a corrupted
    entry, and the retry converges by reading it back.
    """
    from ..trace.capture import run_or_replay

    plan = current_fault_plan()
    if plan is not None:
        plan.inject_before(spec)
    result = cache.get(spec) if cache is not None else None
    source = "cache"
    if result is None:
        result, source = run_or_replay(spec, trace_store)
        if cache is not None:
            cache.put(spec, result)
    if plan is not None:
        result = plan.inject_after(spec, result)
    return result, source


def validate_result(
    spec: ExperimentSpec, result: ExperimentResult
) -> Optional[str]:
    """Structural validity of a result that crossed a process boundary.

    Returns ``None`` when the result is plausible for ``spec``, else a
    human-readable defect description (treated by the engine as a
    transient ``"corrupt"`` fault).
    """
    if result is None:
        return "no result returned"
    if result.spec != spec:
        return "result spec does not match the requested spec"
    if len(result.runs) != spec.repetitions:
        return (
            f"expected {spec.repetitions} repetition(s), "
            f"got {len(result.runs)}"
        )
    for i, run in enumerate(result.runs):
        if len(run.per_process) != spec.n_procs:
            return (
                f"run {i}: expected {spec.n_procs} per-process "
                f"snapshots, got {len(run.per_process)}"
            )
        if run.wall_cycles < 0:
            return f"run {i}: negative wall_cycles ({run.wall_cycles})"
    return None


@dataclass
class CellFailure:
    """One quarantined cell of a resilient sweep."""

    key: CellKey
    kind: str  # "error" | "crash" | "timeout" | "corrupt"
    attempts: int
    error: str
    cause: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> dict:
        """JSON-ready form (the exception object stays behind)."""
        return {
            "cell": key_str(self.key),
            "kind": self.kind,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """Structured outcome of one resilient sweep execution."""

    total: int = 0
    ran: int = 0
    memoized: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    host_losses: int = 0
    requeues: int = 0
    degraded: bool = False
    duration_s: float = 0.0
    failed: List[CellFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell completed (possibly after retries)."""
        return not self.failed

    def to_dict(self) -> dict:
        """JSON-ready summary (the ``repro sweep --json`` payload)."""
        return {
            "total": self.total,
            "ran": self.ran,
            "memoized": self.memoized,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "host_losses": self.host_losses,
            "requeues": self.requeues,
            "degraded": self.degraded,
            "duration_s": round(self.duration_s, 3),
            "failed_cells": [f.to_dict() for f in self.failed],
            "ok": self.ok,
        }

    def summary_lines(self) -> List[str]:
        """Human-readable sweep-end summary (only the interesting
        lines: a clean sweep adds nothing)."""
        out = []
        if self.retries or self.crashes or self.timeouts:
            out.append(
                f"resilience: {self.retries} retries "
                f"({self.crashes} worker crashes, {self.timeouts} timeouts, "
                f"{self.pool_rebuilds} pool rebuilds)"
            )
        if self.host_losses:
            out.append(
                f"resilience: {self.host_losses} host(s) lost, "
                f"{self.requeues} cell(s) re-queued to survivors"
            )
        if self.degraded:
            out.append(
                "resilience: pool unhealthy — degraded to in-process "
                "serial execution"
            )
        for f in self.failed:
            out.append(
                f"FAILED cell {key_str(f.key)}: {f.kind} after "
                f"{f.attempts} attempt(s) — {f.error}"
            )
        return out


class CheckpointManifest:
    """Per-sweep progress manifest persisted next to the result cache.

    The manifest is keyed by a *sweep id* — a hash of every member
    cell's :func:`~repro.core.resultcache.spec_fingerprint`, so it
    covers the cell set **and** the code/config that produced it.  A
    manifest on disk from a different sweep id (edited code, different
    grid) is ignored rather than merged.  Writes are atomic
    (tmp + rename), so a ``kill -9`` leaves either the old or the new
    manifest, never a torn one.
    """

    FORMAT = 1

    def __init__(self, path: Path, sweep_id: str, keys: Sequence[CellKey]):
        self.path = Path(path)
        self.sweep_id = sweep_id
        self.cells: Dict[str, dict] = {
            key_str(k): {"status": "pending", "attempts": 0, "error": None}
            for k in keys
        }

    @classmethod
    def open(
        cls,
        directory: Path,
        keys: Sequence[CellKey],
        fingerprints: Iterable[str],
    ) -> "CheckpointManifest":
        """Create (or reload) the manifest for this sweep under
        ``directory``.  Prior progress is merged only when the on-disk
        sweep id matches."""
        digest = hashlib.sha256(
            "\n".join(sorted(fingerprints)).encode()
        ).hexdigest()[:16]
        path = Path(directory) / f"sweep-{digest}.manifest.json"
        manifest = cls(path, digest, keys)
        try:
            d = json.loads(path.read_text())
        except (OSError, ValueError):
            return manifest
        if (
            isinstance(d, dict)
            and d.get("format") == cls.FORMAT
            and d.get("sweep_id") == digest
        ):
            for cell, state in d.get("cells", {}).items():
                if cell in manifest.cells and isinstance(state, dict):
                    manifest.cells[cell] = state
        return manifest

    def mark(
        self,
        key: CellKey,
        status: str,
        attempts: Optional[int] = None,
        error: Optional[str] = None,
    ) -> None:
        """Record ``key``'s state and persist the manifest."""
        state = self.cells.setdefault(
            key_str(key), {"status": "pending", "attempts": 0, "error": None}
        )
        state["status"] = status
        if attempts is not None:
            state["attempts"] = attempts
        state["error"] = error
        self.save()

    def status(self, key: CellKey) -> str:
        """Current status of ``key`` (``pending``/``done``/``quarantined``)."""
        return self.cells.get(key_str(key), {}).get("status", "pending")

    @property
    def n_done(self) -> int:
        return sum(1 for s in self.cells.values() if s["status"] == "done")

    def to_dict(self) -> dict:
        """The persisted JSON object."""
        return {
            "format": self.FORMAT,
            "sweep_id": self.sweep_id,
            "cells": self.cells,
        }

    def save(self) -> None:
        """Atomically write the manifest (unique tmp + rename).

        The tmp name must be unique per writer: a sweep coordinator
        and a worker on another host may checkpoint the same sweep on
        a shared directory, and a *shared* tmp path would let their
        writes interleave into a torn file before the rename."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=f".{self.path.name}.",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(self.to_dict(), sort_keys=True))
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
