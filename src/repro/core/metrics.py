"""Derived metrics — the exact quantities on the paper's axes.

Every figure reports either raw counters (thread time in cycles,
absolute miss counts) or counters normalized per million instructions;
Fig. 9 converts the un-overlapped latency counter to seconds using the
bus/CPU clock.  The instruction-counter skew the paper mentions is
applied here, when counters are *reported*, not when they are counted.

Every accessor takes the snapshot through a ``CounterSnapshot``-
annotated parameter; the schema drift check
(:func:`repro.obs.schema.check_drift`) walks those annotations and
fails CI if any accessor reads a counter the schema does not declare.
"""

from __future__ import annotations

from ..cpu.counters import CounterSnapshot
from ..mem.machine import MachineConfig
from ..units import MILLION


def reported_instructions(snap: CounterSnapshot, machine: MachineConfig) -> int:
    """Instruction count as the platform's event counter would report it."""
    return max(int(snap.instructions * machine.instr_counter_skew), 1)


def cpi(snap: CounterSnapshot, machine: MachineConfig) -> float:
    """Cycles per (reported) instruction — Fig. 3."""
    return snap.cycles / reported_instructions(snap, machine)


def per_million_instrs(value: float, snap: CounterSnapshot, machine: MachineConfig) -> float:
    """Normalize a counter per 1M reported instructions (Figs. 5-8, 10)."""
    return value * MILLION / reported_instructions(snap, machine)


def thread_time_cycles(snap: CounterSnapshot) -> int:
    """Thread time in cycles — Fig. 2."""
    return snap.cycles


def thread_time_seconds(snap: CounterSnapshot, machine: MachineConfig) -> float:
    """Wall-ish execution time; the paper notes the Origin's higher
    clock makes its *time* lower even when cycles are equal."""
    return snap.cycles / machine.clock_hz


def cycles_per_million(snap: CounterSnapshot, machine: MachineConfig) -> float:
    """Thread time normalized per 1M instructions — Figs. 5 and 7."""
    return per_million_instrs(snap.cycles, snap, machine)


def level1_miss_rate(snap: CounterSnapshot) -> float:
    """Level-1 data-cache miss ratio (misses / data references)."""
    return snap.level1_misses / max(snap.data_refs, 1)


def dcache_misses_per_million(snap: CounterSnapshot, machine: MachineConfig) -> float:
    """Level-1 misses per 1M instructions — Fig. 8 (V-Class)."""
    return per_million_instrs(snap.level1_misses, snap, machine)


def l2_misses_per_million(snap: CounterSnapshot, machine: MachineConfig) -> float:
    """Coherent-level misses per 1M instructions — Fig. 6 (Origin)."""
    return per_million_instrs(snap.coherent_misses, snap, machine)


def memory_latency_seconds(snap: CounterSnapshot, machine: MachineConfig) -> float:
    """Total un-overlapped open-request latency, in seconds — Fig. 9.

    Emulates the PA-8200 counter that "increments based on the number
    of open (waiting) memory requests at each system bus clock tick".
    """
    return snap.mem_latency_cycles / machine.clock_hz


def mean_memory_latency_cycles(snap: CounterSnapshot) -> float:
    """Average raw latency per memory transaction."""
    return snap.mem_latency_cycles / max(snap.mem_accesses, 1)


def switches_per_million(snap: CounterSnapshot, machine: MachineConfig) -> dict:
    """Voluntary/involuntary context switches per 1M instructions — Fig. 10."""
    return {
        "voluntary": per_million_instrs(snap.vol_switches, snap, machine),
        "involuntary": per_million_instrs(snap.invol_switches, snap, machine),
    }


def comm_miss_fraction(snap: CounterSnapshot) -> float:
    """Fraction of coherent-level misses caused by communication —
    the §4.1.2 claim about Q21 at 8 processes."""
    total = snap.miss_cold + snap.miss_capacity + snap.miss_comm
    return snap.miss_comm / total if total else 0.0
