"""The ``repro worker`` serve loop — one sweep host's remote end.

A host worker is a plain subprocess (locally spawned, or the far end
of ``ssh host repro worker``) that speaks the frame protocol of
:mod:`repro.core.wire` on stdin/stdout: it receives a ``config`` frame
and then ``chunk`` frames, runs each cell through the same
:func:`~repro.core.resilience.run_cell_guarded` choke point the local
pool and serial paths use, and streams back one ``cell_done`` frame per
finished cell.  Results are *also* written to the shared
content-addressed :class:`~repro.core.resultcache.ResultCache` (and
tapes to the :class:`~repro.trace.store.TraceStore`) when the sweep has
one — that is what makes a lost host cheap: everything it finished is
already on disk, and the retry on a surviving host is a cache hit.

The worker exits 0 on a ``shutdown`` frame or clean stdin EOF, and
nonzero on a broken stream — the coordinator treats either surprise as
a lost host.  ``REPRO_WORKER=1`` is set on entry so ``scope="worker"``
:class:`~repro.core.resilience.FaultPlan`\\ s arm here exactly as they
do inside multiprocessing pool children.
"""

from __future__ import annotations

import os
from typing import Optional

from .resilience import run_cell_guarded
from .resultcache import ResultCache, result_to_dict
from .wire import WireError, WorkerContext, cells_from_wire, read_frame, write_frame


def serve(stdin, stdout) -> int:
    """Run the worker protocol on binary ``stdin``/``stdout`` streams.

    Returns the process exit code.  The first frame out is ``hello``
    (per-host topology); the first frame in must be ``config``.
    """
    os.environ["REPRO_WORKER"] = "1"  # arm worker-scoped fault plans
    write_frame(stdout, {
        "op": "hello",
        "host_cpus": os.cpu_count() or 1,
        "pid": os.getpid(),
    })
    message = read_frame(stdin)
    if message is None:
        return 0  # coordinator went away before configuring us
    if message.get("op") != "config":
        raise WireError(f"expected config frame, got {message.get('op')!r}")
    context = WorkerContext.from_message(message)

    cache: Optional[ResultCache] = (
        ResultCache(context.cache_dir) if context.cache_dir is not None else None
    )
    trace_store = None
    if context.trace_dir is not None:
        from ..trace.store import TraceStore

        trace_store = TraceStore(context.trace_dir)

    while True:
        message = read_frame(stdin)
        if message is None or message.get("op") == "shutdown":
            return 0
        if message.get("op") != "chunk":
            raise WireError(f"unexpected frame op {message.get('op')!r}")
        token = message.get("token")
        keys = cells_from_wire(message.get("cells", []))
        write_frame(stdout, {
            "op": "heartbeat", "token": token, "n_cells": len(keys),
        })
        failure = None
        for index, key in enumerate(keys):
            spec = context.spec(key)
            try:
                result, source = run_cell_guarded(spec, cache, trace_store)
            except Exception as exc:  # deterministic cell error: report, stop
                failure = [index, repr(exc)]
                break
            write_frame(stdout, {
                "op": "cell_done",
                "token": token,
                "index": index,
                "source": source,
                "result": result_to_dict(result),
            })
        write_frame(stdout, {
            "op": "chunk_done", "token": token, "failure": failure,
        })


def main() -> int:
    """``repro worker`` entry point.

    The frame stream owns stdout, so the real stdout fd is duplicated
    privately for frames and fd 1 is re-pointed at stderr — a stray
    ``print`` anywhere in the simulator then lands in the worker's log
    instead of corrupting the protocol.
    """
    import sys

    frames_fd = os.dup(sys.stdout.fileno())
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    frames_out = os.fdopen(frames_fd, "wb")
    try:
        return serve(sys.stdin.buffer, frames_out)
    except (WireError, BrokenPipeError, OSError) as exc:
        print(f"repro worker: stream broken ({exc})", file=sys.stderr)
        return 1
