"""The paper's contribution: the DSS characterization harness."""

from . import metrics
from .experiment import (
    DEFAULT_TPCH,
    DatabaseCache,
    ExperimentResult,
    ExperimentSpec,
    RunResult,
    run_experiment,
)
from .figures import FIGURES, FigureData, regenerate_all, regenerate_figure
from .mixed import MixedResult, MixedSpec, run_mixed_experiment
from .parallel import ParallelSweepRunner
from .report import render_markdown, render_series, render_table
from .resultcache import ResultCache, code_version, default_cache_dir, spec_fingerprint
from .stats import Summary, summarize, summarize_metric
from .sweep import NPROC_SWEEP, SweepRunner, figure_grid_cells, normalize_cell
from .timeline import FIELDS, TimelineRecorder, TimelineSample, record_timeline
from .validate import CLAIMS, Claim, ClaimResult, scoreboard, validate_all
from .workload import make_query_process, snapshot_process

__all__ = [
    "metrics",
    "ExperimentSpec",
    "ExperimentResult",
    "RunResult",
    "run_experiment",
    "DatabaseCache",
    "DEFAULT_TPCH",
    "FIGURES",
    "FigureData",
    "regenerate_figure",
    "regenerate_all",
    "render_table",
    "render_series",
    "render_markdown",
    "SweepRunner",
    "ParallelSweepRunner",
    "ResultCache",
    "NPROC_SWEEP",
    "figure_grid_cells",
    "normalize_cell",
    "spec_fingerprint",
    "code_version",
    "default_cache_dir",
    "make_query_process",
    "snapshot_process",
    "Claim",
    "ClaimResult",
    "CLAIMS",
    "validate_all",
    "scoreboard",
    "MixedSpec",
    "MixedResult",
    "run_mixed_experiment",
    "Summary",
    "summarize",
    "summarize_metric",
    "TimelineRecorder",
    "TimelineSample",
    "record_timeline",
    "FIELDS",
]
