"""The paper's contribution: the DSS characterization harness."""

from . import metrics
from .experiment import (
    DEFAULT_TPCH,
    DatabaseCache,
    ExperimentResult,
    ExperimentSpec,
    RunResult,
    run_experiment,
)
from .figures import FIGURES, FigureData, regenerate_all, regenerate_figure
from .mixed import MixedResult, MixedSpec, run_mixed_experiment
from .report import render_markdown, render_series, render_table
from .stats import Summary, summarize, summarize_metric
from .sweep import NPROC_SWEEP, SweepRunner
from .timeline import FIELDS, TimelineRecorder, TimelineSample, record_timeline
from .validate import CLAIMS, Claim, ClaimResult, scoreboard, validate_all
from .workload import make_query_process, snapshot_process

__all__ = [
    "metrics",
    "ExperimentSpec",
    "ExperimentResult",
    "RunResult",
    "run_experiment",
    "DatabaseCache",
    "DEFAULT_TPCH",
    "FIGURES",
    "FigureData",
    "regenerate_figure",
    "regenerate_all",
    "render_table",
    "render_series",
    "render_markdown",
    "SweepRunner",
    "NPROC_SWEEP",
    "make_query_process",
    "snapshot_process",
    "Claim",
    "ClaimResult",
    "CLAIMS",
    "validate_all",
    "scoreboard",
    "MixedSpec",
    "MixedResult",
    "run_mixed_experiment",
    "Summary",
    "summarize",
    "summarize_metric",
    "TimelineRecorder",
    "TimelineSample",
    "record_timeline",
    "FIELDS",
]
