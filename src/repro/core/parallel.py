"""Parallel sweep execution.

Every cell of the paper's (query x platform x n_procs) matrix is an
independent, deterministic simulation — a pure function of its
:class:`ExperimentSpec` — so the grid is embarrassingly parallel.
:class:`ParallelSweepRunner` fans missing cells out over a
``concurrent.futures.ProcessPoolExecutor``; only frozen specs cross
the process boundary (workers rebuild the deterministic TPC-H database
from ``TPCHConfig`` via the per-interpreter
:class:`~repro.core.experiment.DatabaseCache`), and only plain
dataclasses come back, so nothing unpicklable is ever shipped.

Scheduling
----------
Cells differ in cost by more than an order of magnitude (cost grows
roughly linearly with ``n_procs`` and the join-heavy queries dwarf the
scan-only ones), so naive FIFO submission lets one straggler serialize
the tail of the sweep.  Missing cells are therefore:

1. **estimated** — ``n_procs x repetitions x per-query weight``
   (weights calibrated from profiled cell runtimes);
2. **packed largest-first (LPT)** into per-worker *chunks*, several
   chunks per worker so the pool can still rebalance dynamically;
3. **shipped heaviest-chunk-first**, so the most expensive work starts
   earliest and finishes inside the envelope of the rest.

Chunks (rather than single-cell tasks) amortize worker spawn and the
TPC-H database rebuild: every cell in a chunk after the first reuses
the worker interpreter's ``DatabaseCache`` entry.  When the runner has
a persistent :class:`~repro.core.resultcache.ResultCache`, its
directory is handed to the workers, which write each finished cell
directly to disk — a crash or a failure in a later cell of a chunk
never loses completed work, and warm workers skip cells another run
already produced.

Resilience
----------
:meth:`ParallelSweepRunner.execute` is the fault-tolerant engine (see
:mod:`repro.core.resilience` for the policy/fault/manifest types):

* **Worker crashes** break the whole ``ProcessPoolExecutor``; the
  engine re-queues every unfinished cell *at cell granularity*,
  rebuilds the pool, and retries the crash-penalized cells under the
  :class:`~repro.core.resilience.RetryPolicy`'s backoff.
* **Stragglers** are bounded by per-chunk deadlines (``timeout_s``
  seconds per unit of estimated cost); an expired chunk's cells are
  re-queued individually and the hung pool is torn down (a hung worker
  cannot be cancelled, only abandoned).
* **Corrupted results** — anything failing
  :func:`~repro.core.resilience.validate_result` — are transient
  faults: retried, never stored.
* **Quarantine**: a cell that exhausts its attempts (or raises a
  deterministic application error) lands in the report's
  ``failed`` list and the sweep *completes* instead of aborting.
* **Graceful degradation**: when the pool breaks more than
  ``max_pool_rebuilds`` times, the remaining cells run serially
  in-process — which also disarms worker-scoped fault plans.

Every retry/timeout/quarantine/degradation is published on the
observer bus (:data:`~repro.obs.bus.SWEEP_EVENTS`) and totalled in the
returned :class:`~repro.core.resilience.SweepReport`.

Because each cell is deterministic, parallel results are bitwise
identical to serial ones — the equivalence test in
``tests/test_parallel_sweep.py`` asserts exactly that, and
``tests/test_resilience.py`` asserts it again *under injected faults*.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import DEFAULT_SIM, SimConfig
from ..obs.bus import SWEEP_EVENTS, SinkRegistry
from ..tpch.datagen import TPCHConfig
from .experiment import (
    DEFAULT_TPCH,
    DatabaseCache,
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from .resilience import (
    CellFailure,
    CheckpointManifest,
    RetryPolicy,
    SweepReport,
    key_str,
    run_cell_guarded,
    validate_result,
)
from .resultcache import ResultCache
from .sweep import CellKey, SweepRunner, normalize_cell

logger = logging.getLogger("repro.sweep")

#: Relative single-process cost of one repetition of each query,
#: calibrated from cProfile wall times of full-scale cells (Q6 is the
#: pure-scan baseline; Q12 adds the join; Q21 is the four-way
#: join/anti-join).  Unknown queries get the conservative middle
#: weight so they neither hide at the tail nor hog the head.
_QUERY_WEIGHT = {"Q6": 1.0, "Q12": 1.9, "Q21": 3.4}
_DEFAULT_WEIGHT = 1.9

#: Chunks per worker: >1 so the pool rebalances when estimates are off,
#: small enough that spawn + database rebuild stays amortized.
_CHUNKS_PER_WORKER = 3


def _estimated_cost(key: CellKey) -> float:
    """Estimated relative cost of a cell: the simulated CPUs each emit
    a reference stream, so cost scales with ``n_procs x repetitions``
    times the query's weight."""
    query, _platform, n_procs, repetitions, _mode = key
    return n_procs * repetitions * _QUERY_WEIGHT.get(query, _DEFAULT_WEIGHT)


def _make_chunks(
    missing: Sequence[CellKey], n_chunks: int, group_key=None
) -> List[List[CellKey]]:
    """LPT-pack cells into at most ``n_chunks`` chunks, heaviest first.

    Longest-processing-time-first greedy: walk cells in decreasing
    estimated cost, always adding to the lightest chunk.  Returns the
    non-empty chunks ordered heaviest-total-first, which is also the
    submission order.

    ``group_key`` (optional) makes cells with equal keys indivisible —
    they are packed as one unit into the same chunk.  Trace-routed
    sweeps group the machine axis this way: both platforms of a
    workload land on the same worker, so the first cell captures and
    persists the tape and its siblings replay it from the store,
    instead of every worker capturing the workload independently.
    """
    if group_key is None:
        groups: List[List[CellKey]] = [[k] for k in missing]
    else:
        by_group: Dict[object, List[CellKey]] = {}
        for key in missing:
            by_group.setdefault(group_key(key), []).append(key)
        groups = list(by_group.values())

    def group_cost(group: List[CellKey]) -> float:
        return sum(_estimated_cost(k) for k in group)

    n_chunks = max(1, min(n_chunks, len(groups)))
    ordered = sorted(groups, key=group_cost, reverse=True)
    chunks: List[List[CellKey]] = [[] for _ in range(n_chunks)]
    loads = [0.0] * n_chunks
    for group in ordered:
        i = loads.index(min(loads))
        chunks[i].extend(group)
        loads[i] += group_cost(group)
    pairs = [(load, chunk) for load, chunk in zip(loads, chunks) if chunk]
    pairs.sort(key=lambda p: p[0], reverse=True)
    return [chunk for _load, chunk in pairs]


def _run_cell(spec: ExperimentSpec) -> ExperimentResult:
    """Single-cell worker entry point (module-level so it pickles by
    reference).  Kept for API compatibility and tests."""
    return run_experiment(spec)


def _run_chunk(
    specs: Sequence[ExperimentSpec],
    cache_dir: Optional[str],
    trace_dir: Optional[str] = None,
) -> Tuple[
    List[ExperimentResult], Optional[Tuple[int, BaseException]], List[str]
]:
    """Chunk worker entry point: run ``specs`` in order.

    Returns ``(results, failure, sources)`` where ``failure`` is
    ``None`` on success or ``(index, exception)`` for the first cell
    that raised — the results of the cells before it are still
    returned, so the parent can memoize partial progress — and
    ``sources`` records how each returned cell was satisfied
    (``cache``/``ran``/``captured``/``replay``).  With a ``cache_dir``,
    each cell is first looked up in (and, when run, written to) the
    shared on-disk result cache, so warm workers skip cells and a
    mid-chunk failure never loses finished cells.  With a
    ``trace_dir``, cells route through the shared on-disk
    :class:`~repro.trace.store.TraceStore` — the first cell of a
    workload captures its tape, every later cell (machine axis,
    other workers, other runs) replays it.  Each cell goes through
    :func:`~repro.core.resilience.run_cell_guarded`, the choke point
    where an ambient :class:`~repro.core.resilience.FaultPlan` injects
    crash/hang/corrupt faults.
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    trace_store = None
    if trace_dir is not None:
        from ..trace.store import TraceStore

        trace_store = TraceStore(trace_dir)
    results: List[ExperimentResult] = []
    sources: List[str] = []
    for i, spec in enumerate(specs):
        try:
            result, source = run_cell_guarded(spec, cache, trace_store)
        except Exception as exc:  # surfaced, with the cell, by the parent
            return results, (i, exc), sources
        results.append(result)
        sources.append(source)
    return results, None, sources


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a broken or hung pool without waiting on it.

    A hung worker cannot be cancelled through the executor API, so the
    pool is shut down without waiting and its processes terminated
    directly — any cells it finished are already in the on-disk result
    cache, so nothing durable is lost."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - Python < 3.9
        pool.shutdown(wait=False)
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass


class ParallelSweepRunner(SweepRunner):
    """Drop-in :class:`SweepRunner` whose :meth:`prewarm` (and therefore
    :meth:`grid`) runs missing cells on ``jobs`` worker processes.

    ``cell()`` stays serial — a single miss is not worth a pool — so
    figure builders should :meth:`prewarm` their grid first (the CLI's
    ``--jobs`` path does this automatically).  :meth:`execute` is the
    resilient engine underneath: :meth:`prewarm` is its strict wrapper
    (first quarantined cell re-raised), while the CLI consumes the
    :class:`~repro.core.resilience.SweepReport` directly so a campaign
    with failed cells still completes the rest of the grid.
    """

    def __init__(
        self,
        sim: SimConfig = DEFAULT_SIM,
        tpch: TPCHConfig = DEFAULT_TPCH,
        verify_results: bool = False,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
        trace_store=None,
    ) -> None:
        super().__init__(
            sim, tpch, verify_results, cache=cache, trace_store=trace_store
        )
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)

    def prewarm(self, cells: Iterable[Sequence]) -> int:
        report = self.execute(cells)
        if report.failed:
            first = report.failed[0]
            raise RuntimeError(
                f"sweep cell {first.key} failed in worker "
                f"({first.kind}: {first.error})"
            ) from first.cause
        return report.ran

    def execute(
        self,
        cells: Iterable[Sequence],
        policy: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        manifest: Optional[CheckpointManifest] = None,
        sinks: Sequence = (),
        max_pool_rebuilds: int = 2,
    ) -> SweepReport:
        """Run every missing cell, riding out transient faults.

        ``timeout_s`` bounds each chunk at ``timeout_s`` host seconds
        per unit of estimated cell cost (``None`` disables deadlines).
        ``manifest`` checkpoints per-cell progress for ``--resume``.
        ``sinks`` receive :data:`~repro.obs.bus.SWEEP_EVENTS`.  Returns
        a :class:`~repro.core.resilience.SweepReport`; quarantined
        cells are reported, not raised.
        """
        t0 = time.perf_counter()
        policy = policy if policy is not None else RetryPolicy()
        registry = SinkRegistry(SWEEP_EVENTS)
        for sink in sinks:
            registry.add(sink)

        def emit(event: str, *args) -> None:
            for cb in registry.callbacks[event]:
                cb(*args)

        keys: List[CellKey] = []
        seen = set()
        for cell in cells:
            key = normalize_cell(cell)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        missing = [k for k in keys if self._lookup(k) is None]
        missing_set = set(missing)
        report = SweepReport(total=len(keys), memoized=len(keys) - len(missing))
        if manifest is not None or registry.sinks:
            for key in keys:
                if key not in missing_set:
                    if manifest is not None:
                        state = manifest.cells.setdefault(
                            key_str(key),
                            {"status": "pending", "attempts": 0, "error": None},
                        )
                        state["status"], state["error"] = "done", None
                    emit("on_cell_done", key, "cache")
            if manifest is not None:
                manifest.save()
        if not missing:
            report.duration_s = time.perf_counter() - t0
            return report

        #: failed attempts so far, per missing cell
        attempts: Dict[CellKey, int] = {k: 0 for k in missing}

        def finish(
            key: CellKey, result: ExperimentResult, source: str = "ran"
        ) -> None:
            self._store(key, result)
            report.ran += 1
            self.count_source(source)
            if manifest is not None:
                manifest.mark(key, "done", attempts=attempts[key] + 1)
            emit("on_cell_done", key, source)

        def quarantine(
            key: CellKey, kind: str, error: str, cause=None
        ) -> None:
            report.failed.append(
                CellFailure(
                    key=key, kind=kind, attempts=attempts[key],
                    error=error, cause=cause,
                )
            )
            if manifest is not None:
                manifest.mark(
                    key, "quarantined", attempts=attempts[key],
                    error=f"{kind}: {error}",
                )
            emit("on_cell_quarantined", key, kind, error)

        def transient_failure(
            key: CellKey, kind: str, error: str, cause=None
        ) -> Optional[float]:
            """Record one failed attempt.  Returns the backoff delay
            when the cell should be retried, ``None`` when it just got
            quarantined."""
            attempts[key] += 1
            if kind == "crash":
                report.crashes += 1
            elif kind == "timeout":
                report.timeouts += 1
            if attempts[key] >= policy.max_attempts:
                quarantine(key, kind, error, cause)
                return None
            delay = policy.delay_s(attempts[key], key_str(key))
            report.retries += 1
            emit("on_cell_retry", key, attempts[key], kind, delay)
            return delay

        def run_serial(keys_to_run: List[CellKey]) -> None:
            # Heaviest-first even serially: a failure surfaces sooner
            # on the cells most likely to be misconfigured (big
            # n_procs).  Deterministic application errors quarantine
            # immediately; only corrupt results (possible under an
            # "any"-scoped fault plan) are retried.
            for key in sorted(keys_to_run, key=_estimated_cost, reverse=True):
                spec = self._spec(key)
                while True:
                    try:
                        result, source = run_cell_guarded(
                            spec, self.cache, self.trace_store
                        )
                    except Exception as exc:
                        attempts[key] += 1
                        quarantine(key, "error", repr(exc), exc)
                        break
                    err = validate_result(spec, result)
                    if err is None:
                        finish(key, result, source)
                        break
                    delay = transient_failure(key, "corrupt", err)
                    if delay is None:
                        break
                    time.sleep(delay)

        if self.jobs == 1 or len(missing) == 1:
            logger.info(
                "sweep: %d missing cell(s) routed to serial in-process "
                "execution (jobs=%d) — skipping pool/pickle overhead",
                len(missing), self.jobs,
            )
            run_serial(missing)
            report.duration_s = time.perf_counter() - t0
            return report

        workers = min(self.jobs, len(missing))
        cache_dir = str(self.cache.directory) if self.cache is not None else None
        trace_dir = (
            str(self.trace_store.directory)
            if self.trace_store is not None
            else None
        )
        # Trace routing makes the machine axis of one workload nearly
        # free *if* its cells share a worker; group them so each chunk
        # captures once and replays its siblings.
        group_key = (
            (lambda k: (k[0], k[2], k[3], k[4])) if trace_dir is not None else None
        )
        # Build the database in the parent first: fork-start workers
        # then inherit the page images instead of regenerating TPC-H
        # once per interpreter (spawn-start platforms still rebuild,
        # but only once per worker thanks to chunking).
        DatabaseCache.get(self.tpch)

        to_run = list(missing)
        first_generation = True
        degrade_reason: Optional[str] = None
        while to_run:
            if first_generation:
                chunks = _make_chunks(
                    to_run, workers * _CHUNKS_PER_WORKER, group_key
                )
            else:
                # Retries and straggler re-queues go back at cell
                # granularity so one bad chunk-mate cannot starve the
                # rest again.
                chunks = [
                    [k] for k in sorted(to_run, key=_estimated_cost, reverse=True)
                ]
            first_generation = False
            to_run = []
            max_delay = 0.0
            broken = False
            pool = ProcessPoolExecutor(max_workers=workers)
            futures: Dict[object, List[CellKey]] = {}
            deadlines: Dict[object, float] = {}
            submitted: Dict[object, float] = {}
            for chunk in chunks:
                fut = pool.submit(
                    _run_chunk,
                    [self._spec(k) for k in chunk],
                    cache_dir,
                    trace_dir,
                )
                futures[fut] = chunk
                submitted[fut] = time.monotonic()
                if timeout_s is not None:
                    cost = sum(max(1.0, _estimated_cost(k)) for k in chunk)
                    deadlines[fut] = submitted[fut] + timeout_s * cost

            while futures:
                wait_for = None
                if deadlines:
                    wait_for = max(0.0, min(deadlines.values()) - time.monotonic())
                done, _pending = wait(
                    set(futures), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    chunk = futures.pop(fut)
                    deadlines.pop(fut, None)
                    try:
                        results, failure, sources = fut.result()
                    except Exception as exc:
                        # The pool is broken — this chunk's worker (or
                        # a sibling's) died mid-flight.  Penalize the
                        # chunk's cells as crashes; siblings still in
                        # flight re-queue unpenalized below.
                        broken = True
                        for key in chunk:
                            delay = transient_failure(
                                key, "crash", f"worker died ({exc!r})", exc
                            )
                            if delay is not None:
                                max_delay = max(max_delay, delay)
                                to_run.append(key)
                        continue
                    for key, result, source in zip(chunk, results, sources):
                        err = validate_result(self._spec(key), result)
                        if err is None:
                            finish(key, result, source)
                        else:
                            delay = transient_failure(key, "corrupt", err)
                            if delay is not None:
                                max_delay = max(max_delay, delay)
                                to_run.append(key)
                    if failure is not None:
                        index, exc = failure
                        bad = chunk[index]
                        attempts[bad] += 1
                        quarantine(bad, "error", repr(exc), exc)
                        # cells behind the failure never ran: re-queue
                        # without penalty
                        to_run.extend(chunk[index + 1:])
                if broken:
                    break
                if deadlines:
                    now = time.monotonic()
                    expired = [
                        f for f, dl in deadlines.items()
                        if dl <= now and not f.done()
                    ]
                    if expired:
                        broken = True
                        for fut in expired:
                            chunk = futures.pop(fut)
                            deadlines.pop(fut, None)
                            elapsed = now - submitted[fut]
                            for key in chunk:
                                emit(
                                    "on_cell_timeout",
                                    key, attempts[key] + 1, elapsed,
                                )
                                delay = transient_failure(
                                    key, "timeout",
                                    f"chunk still running after {elapsed:.1f}s",
                                )
                                if delay is not None:
                                    max_delay = max(max_delay, delay)
                                    to_run.append(key)
                        break

            if broken:
                # Whatever is still in flight re-queues unpenalized;
                # results its workers already cached make the re-run
                # cheap.  The pool itself is unsalvageable (broken, or
                # wedged on a hung worker).
                for chunk in futures.values():
                    to_run.extend(chunk)
                futures.clear()
                _kill_pool(pool)
                report.pool_rebuilds += 1
                if report.pool_rebuilds > max_pool_rebuilds:
                    degrade_reason = (
                        f"worker pool torn down {report.pool_rebuilds} times "
                        f"(limit {max_pool_rebuilds})"
                    )
                    break
            else:
                pool.shutdown()
            if to_run and max_delay > 0:
                time.sleep(max_delay)  # batched backoff for this generation

        if degrade_reason is not None and to_run:
            report.degraded = True
            emit("on_sweep_degraded", degrade_reason)
            logger.warning(
                "sweep: %s — degrading %d remaining cell(s) to in-process "
                "serial execution", degrade_reason, len(to_run),
            )
            run_serial(to_run)
        report.duration_s = time.perf_counter() - t0
        return report
