"""Parallel sweep execution.

Every cell of the paper's (query x platform x n_procs) matrix is an
independent, deterministic simulation — a pure function of its
:class:`ExperimentSpec` — so the grid is embarrassingly parallel.
:class:`ParallelSweepRunner` fans missing cells out over a pluggable
:class:`~repro.core.executors.SweepExecutor`: the in-process pool
(:class:`~repro.core.executors.LocalPoolExecutor`), one worker
subprocess per host speaking the JSON frame protocol
(:class:`~repro.core.executors.SubprocessHostExecutor`), or a fleet of
hosts (:class:`~repro.core.executors.MultiHostExecutor`).  Only cell
keys and plain JSON cross host boundaries (workers rebuild the
deterministic TPC-H database from ``TPCHConfig`` via the
per-interpreter :class:`~repro.core.experiment.DatabaseCache`), so
nothing unpicklable — indeed nothing pickled at all, beyond the local
pool's own specs — is ever shipped.

Scheduling
----------
Cells differ in cost by more than an order of magnitude (cost grows
roughly linearly with ``n_procs`` and the join-heavy queries dwarf the
scan-only ones), so naive FIFO submission lets one straggler serialize
the tail of the sweep.  Missing cells are therefore:

1. **estimated** — ``n_procs x repetitions x per-query weight``
   (weights calibrated from profiled cell runtimes);
2. **packed largest-first (LPT)** into per-lane *chunks*, several
   chunks per lane so the executor can still rebalance dynamically;
3. **shipped heaviest-chunk-first**, so the most expensive work starts
   earliest and finishes inside the envelope of the rest (a multi-host
   executor additionally places each chunk on its least-loaded live
   host).

Chunks (rather than single-cell tasks) amortize worker spawn and the
TPC-H database rebuild: every cell in a chunk after the first reuses
the worker interpreter's ``DatabaseCache`` entry.  When the runner has
a persistent :class:`~repro.core.resultcache.ResultCache`, its
directory is handed to the workers, which write each finished cell
directly to disk — a crash or a failure in a later cell of a chunk
never loses completed work, warm workers skip cells another run
already produced, and on a shared filesystem the cache doubles as the
fleet-wide result bus (identical cells are computed once, fleet-wide).

Resilience
----------
:meth:`ParallelSweepRunner.execute` is the fault-tolerant engine (see
:mod:`repro.core.resilience` for the policy/fault/manifest types); it
consumes executor *events* and never cares where a chunk physically
ran:

* **Worker crashes** break the local pool; the engine re-queues every
  unfinished cell *at cell granularity*, rebuilds, and retries the
  crash-penalized cells under the
  :class:`~repro.core.resilience.RetryPolicy`'s backoff.
* **Lost hosts** are the distributed analogue — but *non-fatal* while
  any fleet sibling survives: the dead host's unfinished cells
  re-queue (``on_cell_requeue``) and the next generation lands them on
  the survivors.  Cells the host finished were already streamed back
  and cached, so nothing is recomputed.
* **Stragglers** are bounded by per-chunk deadlines (``timeout_s``
  seconds per unit of estimated cost); an expired chunk's cells are
  re-queued individually and only the hung resource is torn down (a
  hung worker cannot be cancelled, only abandoned).
* **Corrupted results** — anything failing
  :func:`~repro.core.resilience.validate_result`, including a mangled
  wire payload — are transient faults: retried, never stored.
* **Quarantine**: a cell that exhausts its attempts (or raises a
  deterministic application error) lands in the report's
  ``failed`` list and the sweep *completes* instead of aborting.
* **Graceful degradation**: when an executor breaks more than
  ``max_pool_rebuilds`` times, the engine falls down the chain —
  multi-host → local pool → serial in-process (which also disarms
  worker-scoped fault plans).

Every dispatch/heartbeat/retry/timeout/host-loss/requeue/quarantine/
degradation is published on the observer bus
(:data:`~repro.obs.bus.SWEEP_EVENTS`) and totalled in the returned
:class:`~repro.core.resilience.SweepReport`.

Because each cell is deterministic, parallel and distributed results
are bitwise identical to serial ones — the equivalence tests in
``tests/test_parallel_sweep.py`` and ``tests/test_distributed_sweep.py``
assert exactly that, and ``tests/test_resilience.py`` asserts it again
*under injected faults*.
"""

from __future__ import annotations

import logging
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .._deprecations import warn_once

from ..config import DEFAULT_SIM, SimConfig
from ..errors import ConfigError
from ..obs.bus import SWEEP_EVENTS, SinkRegistry
from ..tpch.datagen import TPCHConfig
from .executors import (  # noqa: F401  (re-exported for compatibility)
    ExecutorError,
    LocalPoolExecutor,
    MultiHostExecutor,
    SweepExecutor,
    _kill_pool,
    _run_cell,
    _run_chunk,
    select_executor,
)
from .experiment import DEFAULT_TPCH, ExperimentResult
from .resilience import (
    CellFailure,
    CheckpointManifest,
    RetryPolicy,
    SweepReport,
    key_str,
    run_cell_guarded,
    validate_result,
)
from .resultcache import ResultCache
from .sweep import CellKey, SweepRunner, normalize_cell
from .wire import WorkerContext

logger = logging.getLogger("repro.sweep")

#: Relative single-process cost of one repetition of each query,
#: calibrated from cProfile wall times of full-scale cells (Q6 is the
#: pure-scan baseline; Q12 adds the join; Q21 is the four-way
#: join/anti-join).  Unknown queries get the conservative middle
#: weight so they neither hide at the tail nor hog the head.
_QUERY_WEIGHT = {"Q6": 1.0, "Q12": 1.9, "Q21": 3.4}
_DEFAULT_WEIGHT = 1.9

#: Chunks per execution lane: >1 so the executor rebalances when
#: estimates are off, small enough that spawn + database rebuild stays
#: amortized.
_CHUNKS_PER_WORKER = 3

#: Sentinel distinguishing "no executor passed" (pick one) from an
#: explicit ``executor=None`` (force serial).
_UNSET = object()


def _estimated_cost(key: CellKey) -> float:
    """Estimated relative cost of a cell: the simulated CPUs each emit
    a reference stream, so cost scales with ``n_procs x repetitions``
    times the query's weight."""
    query, _platform, n_procs, repetitions, _mode = key
    return n_procs * repetitions * _QUERY_WEIGHT.get(query, _DEFAULT_WEIGHT)


def _make_chunks(
    missing: Sequence[CellKey], n_chunks: int, group_key=None
) -> List[List[CellKey]]:
    """LPT-pack cells into at most ``n_chunks`` chunks, heaviest first.

    Longest-processing-time-first greedy: walk cells in decreasing
    estimated cost, always adding to the lightest chunk.  Returns the
    non-empty chunks ordered heaviest-total-first, which is also the
    submission order.

    ``group_key`` (optional) makes cells with equal keys indivisible —
    they are packed as one unit into the same chunk.  Trace-routed
    sweeps group the machine axis this way: both platforms of a
    workload land on the same worker, so the first cell captures and
    persists the tape and its siblings replay it from the store,
    instead of every worker capturing the workload independently.
    """
    if group_key is None:
        groups: List[List[CellKey]] = [[k] for k in missing]
    else:
        by_group: Dict[object, List[CellKey]] = {}
        for key in missing:
            by_group.setdefault(group_key(key), []).append(key)
        groups = list(by_group.values())

    def group_cost(group: List[CellKey]) -> float:
        return sum(_estimated_cost(k) for k in group)

    n_chunks = max(1, min(n_chunks, len(groups)))
    ordered = sorted(groups, key=group_cost, reverse=True)
    chunks: List[List[CellKey]] = [[] for _ in range(n_chunks)]
    loads = [0.0] * n_chunks
    for group in ordered:
        i = loads.index(min(loads))
        chunks[i].extend(group)
        loads[i] += group_cost(group)
    pairs = [(load, chunk) for load, chunk in zip(loads, chunks) if chunk]
    pairs.sort(key=lambda p: p[0], reverse=True)
    return [chunk for _load, chunk in pairs]


class ParallelSweepRunner(SweepRunner):
    """Drop-in :class:`SweepRunner` whose :meth:`prewarm` (and therefore
    :meth:`grid`) runs missing cells on a
    :class:`~repro.core.executors.SweepExecutor`.

    ``cell()`` stays serial — a single miss is not worth a pool — so
    figure builders should :meth:`prewarm` their grid first (the CLI's
    ``--jobs``/``--hosts`` paths do this automatically).
    :meth:`execute` is the resilient engine underneath: :meth:`prewarm`
    is its strict wrapper (first quarantined cell re-raised), while the
    CLI consumes the :class:`~repro.core.resilience.SweepReport`
    directly so a campaign with failed cells still completes the rest
    of the grid.

    Pick the execution path with
    :func:`~repro.core.executors.select_executor` and pass it as
    ``executor=``; the ``jobs=`` kwarg is deprecated (it leaked the
    pool-internals choice into every call site).
    """

    def __init__(
        self,
        sim: SimConfig = DEFAULT_SIM,
        tpch: TPCHConfig = DEFAULT_TPCH,
        verify_results: bool = False,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
        trace_store=None,
        executor=_UNSET,
    ) -> None:
        super().__init__(
            sim, tpch, verify_results, cache=cache, trace_store=trace_store
        )
        if executor is not _UNSET and jobs is not None:
            raise ConfigError(
                "pass either executor= or the deprecated jobs=, not both"
            )
        if jobs is not None:
            warn_once(
                "parallel-jobs-kwarg",
                "ParallelSweepRunner(jobs=...) is deprecated and will be "
                "removed in v2 (see repro._deprecations.REMOVALS); pass "
                "executor=select_executor(jobs=...) instead",
            )
            self.executor = select_executor(jobs=jobs)
        elif executor is not _UNSET:
            self.executor = executor
        else:
            self.executor = select_executor()
        #: Worker-lane count, retained for log messages and reports.
        if jobs is not None and jobs > 0:
            self.jobs = jobs
        elif self.executor is not None:
            self.jobs = self.executor.plan_workers(1 << 30)
        else:
            self.jobs = 1

    def prewarm(self, cells: Iterable[Sequence]) -> int:
        report = self.execute(cells)
        if report.failed:
            first = report.failed[0]
            raise RuntimeError(
                f"sweep cell {first.key} failed in worker "
                f"({first.kind}: {first.error})"
            ) from first.cause
        return report.ran

    def execute(
        self,
        cells: Iterable[Sequence],
        policy: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        manifest: Optional[CheckpointManifest] = None,
        sinks: Sequence = (),
        max_pool_rebuilds: int = 2,
    ) -> SweepReport:
        """Run every missing cell, riding out transient faults.

        ``timeout_s`` bounds each chunk at ``timeout_s`` host seconds
        per unit of estimated cell cost (``None`` disables deadlines).
        ``manifest`` checkpoints per-cell progress for ``--resume``.
        ``sinks`` receive :data:`~repro.obs.bus.SWEEP_EVENTS`.
        ``max_pool_rebuilds`` is the per-executor teardown budget
        before the engine falls down the degradation chain.  Returns
        a :class:`~repro.core.resilience.SweepReport`; quarantined
        cells are reported, not raised.
        """
        t0 = time.perf_counter()
        policy = policy if policy is not None else RetryPolicy()
        registry = SinkRegistry(SWEEP_EVENTS)
        for sink in sinks:
            registry.add(sink)

        def emit(event: str, *args) -> None:
            for cb in registry.callbacks[event]:
                cb(*args)

        keys: List[CellKey] = []
        seen = set()
        for cell in cells:
            key = normalize_cell(cell)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        missing = [k for k in keys if self._lookup(k) is None]
        missing_set = set(missing)
        report = SweepReport(total=len(keys), memoized=len(keys) - len(missing))
        if manifest is not None or registry.sinks:
            for key in keys:
                if key not in missing_set:
                    if manifest is not None:
                        state = manifest.cells.setdefault(
                            key_str(key),
                            {"status": "pending", "attempts": 0, "error": None},
                        )
                        state["status"], state["error"] = "done", None
                    emit("on_cell_done", key, "cache")
            if manifest is not None:
                manifest.save()
        if not missing:
            report.duration_s = time.perf_counter() - t0
            return report

        #: failed attempts so far, per missing cell
        attempts: Dict[CellKey, int] = {k: 0 for k in missing}

        def finish(
            key: CellKey, result: ExperimentResult, source: str = "ran"
        ) -> None:
            self._store(key, result)
            report.ran += 1
            self.count_source(source)
            if manifest is not None:
                manifest.mark(key, "done", attempts=attempts[key] + 1)
            emit("on_cell_done", key, source)

        def quarantine(
            key: CellKey, kind: str, error: str, cause=None
        ) -> None:
            report.failed.append(
                CellFailure(
                    key=key, kind=kind, attempts=attempts[key],
                    error=error, cause=cause,
                )
            )
            if manifest is not None:
                manifest.mark(
                    key, "quarantined", attempts=attempts[key],
                    error=f"{kind}: {error}",
                )
            emit("on_cell_quarantined", key, kind, error)

        def transient_failure(
            key: CellKey, kind: str, error: str, cause=None
        ) -> Optional[float]:
            """Record one failed attempt.  Returns the backoff delay
            when the cell should be retried, ``None`` when it just got
            quarantined."""
            attempts[key] += 1
            if kind == "crash":
                report.crashes += 1
            elif kind == "timeout":
                report.timeouts += 1
            if attempts[key] >= policy.max_attempts:
                quarantine(key, kind, error, cause)
                return None
            delay = policy.delay_s(attempts[key], key_str(key))
            report.retries += 1
            emit("on_cell_retry", key, attempts[key], kind, delay)
            return delay

        def run_serial(keys_to_run: List[CellKey]) -> None:
            # Heaviest-first even serially: a failure surfaces sooner
            # on the cells most likely to be misconfigured (big
            # n_procs).  Deterministic application errors quarantine
            # immediately; only corrupt results (possible under an
            # "any"-scoped fault plan) are retried.
            for key in sorted(keys_to_run, key=_estimated_cost, reverse=True):
                spec = self._spec(key)
                while True:
                    try:
                        result, source = run_cell_guarded(
                            spec, self.cache, self.trace_store
                        )
                    except Exception as exc:
                        attempts[key] += 1
                        quarantine(key, "error", repr(exc), exc)
                        break
                    err = validate_result(spec, result)
                    if err is None:
                        finish(key, result, source)
                        break
                    delay = transient_failure(key, "corrupt", err)
                    if delay is None:
                        break
                    time.sleep(delay)

        if self.executor is None or len(missing) == 1:
            logger.info(
                "sweep: %d missing cell(s) routed to serial in-process "
                "execution (jobs=%d) — skipping pool/pickle overhead",
                len(missing), self.jobs if self.executor is None else 1,
            )
            run_serial(missing)
            report.duration_s = time.perf_counter() - t0
            return report

        cache_dir = str(self.cache.directory) if self.cache is not None else None
        trace_dir = (
            str(self.trace_store.directory)
            if self.trace_store is not None
            else None
        )
        context = WorkerContext(
            sim=self.sim, tpch=self.tpch,
            verify_results=self.verify_results,
            cache_dir=cache_dir, trace_dir=trace_dir,
        )
        # Trace routing makes the machine axis of one workload nearly
        # free *if* its cells share a worker; group them so each chunk
        # captures once and replays its siblings.
        group_key = (
            (lambda k: (k[0], k[2], k[3], k[4])) if trace_dir is not None else None
        )

        # Degradation chain: the configured executor, then (when that
        # executor was a fleet) the local pool, then serial.
        chain: List[SweepExecutor] = [self.executor]
        if isinstance(self.executor, MultiHostExecutor):
            chain.append(LocalPoolExecutor())
        layer = 0
        executor = chain[layer]
        rebuilds_at_layer = 0
        next_token = 0

        def fall_back(reason: str) -> bool:
            """Advance to the next executor layer; ``False`` when only
            serial remains."""
            nonlocal layer, executor, rebuilds_at_layer
            report.degraded = True
            emit("on_sweep_degraded", reason)
            layer += 1
            if layer < len(chain):
                executor = chain[layer]
                rebuilds_at_layer = report.pool_rebuilds
                logger.warning(
                    "sweep: %s — falling back to %s for %d remaining cell(s)",
                    reason, executor.name, len(to_run),
                )
                return True
            logger.warning(
                "sweep: %s — degrading %d remaining cell(s) to in-process "
                "serial execution", reason, len(to_run),
            )
            return False

        to_run = list(missing)
        first_generation = True
        while to_run:
            try:
                executor.start(context, n_units=len(to_run))
            except ExecutorError as exc:
                if fall_back(str(exc)):
                    continue
                run_serial(to_run)
                to_run = []
                break
            workers = executor.plan_workers(len(to_run))
            if first_generation:
                chunks = _make_chunks(
                    to_run, workers * _CHUNKS_PER_WORKER, group_key
                )
            else:
                # Retries and straggler re-queues go back at cell
                # granularity so one bad chunk-mate cannot starve the
                # rest again.
                chunks = [
                    [k] for k in sorted(to_run, key=_estimated_cost, reverse=True)
                ]
            first_generation = False
            to_run = []
            max_delay = 0.0
            broken = False

            outstanding: Dict[int, List[CellKey]] = {}
            handled: Dict[int, Set[int]] = {}
            deadlines: Dict[int, float] = {}
            submitted_at: Dict[int, float] = {}
            for chunk in chunks:
                token = next_token
                next_token += 1
                cost = sum(max(1.0, _estimated_cost(k)) for k in chunk)
                outstanding[token] = chunk
                handled[token] = set()
                host = executor.submit(token, chunk, cost)
                submitted_at[token] = time.monotonic()
                if timeout_s is not None:
                    deadlines[token] = submitted_at[token] + timeout_s * cost
                emit("on_chunk_dispatch", host, token, len(chunk))

            def requeue_unfinished(
                token: int, host: str, reason: str, penalize: Optional[str] = None,
                error: str = "", cause=None,
            ) -> int:
                """Pull ``token``'s unfinished cells back onto the
                queue.  With ``penalize`` set, each costs an attempt of
                that fault kind; otherwise the cells ride back free.
                Returns how many cells were re-queued."""
                nonlocal max_delay
                chunk = outstanding.pop(token, None)
                if chunk is None:
                    return 0  # stale token from an abandoned generation
                done_idx = handled.pop(token, set())
                deadlines.pop(token, None)
                n = 0
                for i, key in enumerate(chunk):
                    if i in done_idx:
                        continue
                    if penalize is not None:
                        delay = transient_failure(key, penalize, error, cause)
                        if delay is None:
                            continue  # quarantined
                        max_delay = max(max_delay, delay)
                    to_run.append(key)
                    n += 1
                    report.requeues += 1
                    emit("on_cell_requeue", key, host, reason)
                return n

            while outstanding:
                wait_for = None
                if deadlines:
                    wait_for = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                event = executor.next_event(wait_for)
                if event is None and wait_for is None:
                    # The executor went quiet with work outstanding and
                    # no deadline to wake us — it lost track of its
                    # futures.  Tear it down; the cells re-queue below.
                    broken = True
                    break
                while event is not None and not broken:
                    if event.kind == "heartbeat":
                        emit("on_host_heartbeat", event.host, event.payload)
                    elif event.kind == "cell":
                        chunk = outstanding.get(event.token)
                        if (
                            chunk is not None
                            and 0 <= event.index < len(chunk)
                            and event.index not in handled[event.token]
                        ):
                            key = chunk[event.index]
                            handled[event.token].add(event.index)
                            err = validate_result(self._spec(key), event.result)
                            if err is None:
                                finish(key, event.result, event.source)
                            else:
                                delay = transient_failure(key, "corrupt", err)
                                if delay is not None:
                                    max_delay = max(max_delay, delay)
                                    to_run.append(key)
                    elif event.kind == "chunk_done":
                        chunk = outstanding.get(event.token)
                        if chunk is not None:
                            if event.failure is not None:
                                index, error_str, cause = event.failure
                                if 0 <= index < len(chunk):
                                    bad = chunk[index]
                                    if index not in handled[event.token]:
                                        handled[event.token].add(index)
                                        attempts[bad] += 1
                                        quarantine(bad, "error", error_str, cause)
                                # cells behind the failure never ran:
                                # re-queue without penalty
                                requeue_unfinished(
                                    event.token, event.host, "after-failure"
                                )
                            else:
                                # every cell should have streamed back;
                                # anything the worker skipped rides
                                # back free
                                requeue_unfinished(
                                    event.token, event.host, "incomplete-chunk"
                                )
                            outstanding.pop(event.token, None)
                            handled.pop(event.token, None)
                            deadlines.pop(event.token, None)
                    elif event.kind == "lost":
                        live_tokens = [
                            t for t in event.tokens if t in outstanding
                        ]
                        n_requeued = 0
                        for t in live_tokens:
                            n_requeued += requeue_unfinished(
                                t, event.host, "host-lost",
                                penalize="crash",
                                error=event.error or "host lost",
                                cause=event.cause,
                            )
                        if event.payload.get("remote"):
                            report.host_losses += 1
                            emit(
                                "on_host_lost",
                                event.host, event.error, n_requeued,
                            )
                        if event.fatal:
                            broken = True
                        break
                    if not outstanding:
                        break
                    event = executor.next_event(0.0)

                if broken or not outstanding:
                    break
                if deadlines:
                    now = time.monotonic()
                    expired = [
                        t for t, dl in list(deadlines.items()) if dl <= now
                    ]
                    if expired:
                        for t in expired:
                            elapsed = now - submitted_at[t]
                            chunk = outstanding.get(t, [])
                            done_idx = handled.get(t, set())
                            for i, key in enumerate(chunk):
                                if i in done_idx:
                                    continue
                                emit(
                                    "on_cell_timeout",
                                    key, attempts[key] + 1, elapsed,
                                )
                            requeue_unfinished(
                                t, "", "timeout", penalize="timeout",
                                error=f"chunk still running after {elapsed:.1f}s",
                            )
                        collateral, fatal = executor.expire(expired)
                        for t in collateral:
                            requeue_unfinished(t, "", "expired-collateral")
                        if fatal:
                            broken = True
                            break

            if broken:
                # Whatever is still in flight re-queues unpenalized;
                # results its workers already cached make the re-run
                # cheap.  The broken resources are unsalvageable.
                for t in executor.abandon():
                    requeue_unfinished(t, "", "executor-abandoned")
                for t in list(outstanding):
                    requeue_unfinished(t, "", "executor-abandoned")
                report.pool_rebuilds += 1
                if report.pool_rebuilds - rebuilds_at_layer > max_pool_rebuilds:
                    reason = (
                        f"{executor.name} torn down "
                        f"{report.pool_rebuilds - rebuilds_at_layer} times "
                        f"(limit {max_pool_rebuilds})"
                    )
                    if not fall_back(reason):
                        run_serial(to_run)
                        to_run = []
                        break
            if to_run and max_delay > 0:
                time.sleep(max_delay)  # batched backoff for this generation

        executor.close()
        report.duration_s = time.perf_counter() - t0
        return report
