"""Parallel sweep execution.

Every cell of the paper's (query x platform x n_procs) matrix is an
independent, deterministic simulation — a pure function of its
:class:`ExperimentSpec` — so the grid is embarrassingly parallel.
:class:`ParallelSweepRunner` fans missing cells out over a
``concurrent.futures.ProcessPoolExecutor``; only the frozen spec
crosses the process boundary (workers rebuild the deterministic TPC-H
database from ``TPCHConfig`` via the per-interpreter
:class:`~repro.core.experiment.DatabaseCache`), and only plain
dataclasses come back, so nothing unpicklable is ever shipped.

Because each cell is deterministic, parallel results are bitwise
identical to serial ones — the equivalence test in
``tests/test_parallel_sweep.py`` asserts exactly that.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterable, Optional, Sequence

from ..config import DEFAULT_SIM, SimConfig
from ..tpch.datagen import TPCHConfig
from .experiment import DEFAULT_TPCH, ExperimentResult, ExperimentSpec, run_experiment
from .resultcache import ResultCache
from .sweep import SweepRunner, normalize_cell


def _run_cell(spec: ExperimentSpec) -> ExperimentResult:
    """Worker entry point (module-level so it pickles by reference)."""
    return run_experiment(spec)


class ParallelSweepRunner(SweepRunner):
    """Drop-in :class:`SweepRunner` whose :meth:`prewarm` (and therefore
    :meth:`grid`) runs missing cells on ``jobs`` worker processes.

    ``cell()`` stays serial — a single miss is not worth a pool — so
    figure builders should :meth:`prewarm` their grid first (the CLI's
    ``--jobs`` path does this automatically).
    """

    def __init__(
        self,
        sim: SimConfig = DEFAULT_SIM,
        tpch: TPCHConfig = DEFAULT_TPCH,
        verify_results: bool = False,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
    ) -> None:
        super().__init__(sim, tpch, verify_results, cache=cache)
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)

    def prewarm(self, cells: Iterable[Sequence]) -> int:
        missing = []
        seen = set()
        for cell in cells:
            key = normalize_cell(cell)
            if key in seen:
                continue
            seen.add(key)
            if self._lookup(key) is None:
                missing.append(key)
        if not missing:
            return 0
        if self.jobs == 1 or len(missing) == 1:
            for key in missing:
                self._store(key, run_experiment(self._spec(key)))
            return len(missing)
        workers = min(self.jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_cell, self._spec(key)): key for key in missing
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    # .result() re-raises worker exceptions here, in the
                    # parent, with the cell attached for context.
                    try:
                        result = fut.result()
                    except Exception as exc:
                        for f in pending:
                            f.cancel()
                        raise RuntimeError(
                            f"sweep cell {futures[fut]} failed in worker"
                        ) from exc
                    self._store(futures[fut], result)
        return len(missing)
