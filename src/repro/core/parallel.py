"""Parallel sweep execution.

Every cell of the paper's (query x platform x n_procs) matrix is an
independent, deterministic simulation — a pure function of its
:class:`ExperimentSpec` — so the grid is embarrassingly parallel.
:class:`ParallelSweepRunner` fans missing cells out over a
``concurrent.futures.ProcessPoolExecutor``; only frozen specs cross
the process boundary (workers rebuild the deterministic TPC-H database
from ``TPCHConfig`` via the per-interpreter
:class:`~repro.core.experiment.DatabaseCache`), and only plain
dataclasses come back, so nothing unpicklable is ever shipped.

Scheduling
----------
Cells differ in cost by more than an order of magnitude (cost grows
roughly linearly with ``n_procs`` and the join-heavy queries dwarf the
scan-only ones), so naive FIFO submission lets one straggler serialize
the tail of the sweep.  Missing cells are therefore:

1. **estimated** — ``n_procs x repetitions x per-query weight``
   (weights calibrated from profiled cell runtimes);
2. **packed largest-first (LPT)** into per-worker *chunks*, several
   chunks per worker so the pool can still rebalance dynamically;
3. **shipped heaviest-chunk-first**, so the most expensive work starts
   earliest and finishes inside the envelope of the rest.

Chunks (rather than single-cell tasks) amortize worker spawn and the
TPC-H database rebuild: every cell in a chunk after the first reuses
the worker interpreter's ``DatabaseCache`` entry.  When the runner has
a persistent :class:`~repro.core.resultcache.ResultCache`, its
directory is handed to the workers, which write each finished cell
directly to disk — a crash or a failure in a later cell of a chunk
never loses completed work, and warm workers skip cells another run
already produced.

Because each cell is deterministic, parallel results are bitwise
identical to serial ones — the equivalence test in
``tests/test_parallel_sweep.py`` asserts exactly that.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterable, List, Optional, Sequence, Tuple

from ..config import DEFAULT_SIM, SimConfig
from ..tpch.datagen import TPCHConfig
from .experiment import (
    DEFAULT_TPCH,
    DatabaseCache,
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from .resultcache import ResultCache
from .sweep import CellKey, SweepRunner, normalize_cell

#: Relative single-process cost of one repetition of each query,
#: calibrated from cProfile wall times of full-scale cells (Q6 is the
#: pure-scan baseline; Q12 adds the join; Q21 is the four-way
#: join/anti-join).  Unknown queries get the conservative middle
#: weight so they neither hide at the tail nor hog the head.
_QUERY_WEIGHT = {"Q6": 1.0, "Q12": 1.9, "Q21": 3.4}
_DEFAULT_WEIGHT = 1.9

#: Chunks per worker: >1 so the pool rebalances when estimates are off,
#: small enough that spawn + database rebuild stays amortized.
_CHUNKS_PER_WORKER = 3


def _estimated_cost(key: CellKey) -> float:
    """Estimated relative cost of a cell: the simulated CPUs each emit
    a reference stream, so cost scales with ``n_procs x repetitions``
    times the query's weight."""
    query, _platform, n_procs, repetitions, _mode = key
    return n_procs * repetitions * _QUERY_WEIGHT.get(query, _DEFAULT_WEIGHT)


def _make_chunks(missing: Sequence[CellKey], n_chunks: int) -> List[List[CellKey]]:
    """LPT-pack cells into at most ``n_chunks`` chunks, heaviest first.

    Longest-processing-time-first greedy: walk cells in decreasing
    estimated cost, always adding to the lightest chunk.  Returns the
    non-empty chunks ordered heaviest-total-first, which is also the
    submission order.
    """
    n_chunks = max(1, min(n_chunks, len(missing)))
    ordered = sorted(missing, key=_estimated_cost, reverse=True)
    chunks: List[List[CellKey]] = [[] for _ in range(n_chunks)]
    loads = [0.0] * n_chunks
    for key in ordered:
        i = loads.index(min(loads))
        chunks[i].append(key)
        loads[i] += _estimated_cost(key)
    pairs = [(load, chunk) for load, chunk in zip(loads, chunks) if chunk]
    pairs.sort(key=lambda p: p[0], reverse=True)
    return [chunk for _load, chunk in pairs]


def _run_cell(spec: ExperimentSpec) -> ExperimentResult:
    """Single-cell worker entry point (module-level so it pickles by
    reference).  Kept for API compatibility and tests."""
    return run_experiment(spec)


def _run_chunk(
    specs: Sequence[ExperimentSpec], cache_dir: Optional[str]
) -> Tuple[List[ExperimentResult], Optional[Tuple[int, BaseException]]]:
    """Chunk worker entry point: run ``specs`` in order.

    Returns ``(results, failure)`` where ``failure`` is ``None`` on
    success or ``(index, exception)`` for the first cell that raised —
    the results of the cells before it are still returned, so the
    parent can memoize partial progress.  With a ``cache_dir``, each
    cell is first looked up in (and, when run, written to) the shared
    on-disk result cache, so warm workers skip cells and a mid-chunk
    failure never loses finished cells.
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: List[ExperimentResult] = []
    for i, spec in enumerate(specs):
        try:
            result = cache.get(spec) if cache is not None else None
            if result is None:
                result = run_experiment(spec)
                if cache is not None:
                    cache.put(spec, result)
        except Exception as exc:  # surfaced, with the cell, by the parent
            return results, (i, exc)
        results.append(result)
    return results, None


class ParallelSweepRunner(SweepRunner):
    """Drop-in :class:`SweepRunner` whose :meth:`prewarm` (and therefore
    :meth:`grid`) runs missing cells on ``jobs`` worker processes.

    ``cell()`` stays serial — a single miss is not worth a pool — so
    figure builders should :meth:`prewarm` their grid first (the CLI's
    ``--jobs`` path does this automatically).
    """

    def __init__(
        self,
        sim: SimConfig = DEFAULT_SIM,
        tpch: TPCHConfig = DEFAULT_TPCH,
        verify_results: bool = False,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
    ) -> None:
        super().__init__(sim, tpch, verify_results, cache=cache)
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)

    def prewarm(self, cells: Iterable[Sequence]) -> int:
        missing = []
        seen = set()
        for cell in cells:
            key = normalize_cell(cell)
            if key in seen:
                continue
            seen.add(key)
            if self._lookup(key) is None:
                missing.append(key)
        if not missing:
            return 0
        if self.jobs == 1 or len(missing) == 1:
            # Heaviest-first even serially: a failure surfaces sooner on
            # the cells most likely to be misconfigured (big n_procs).
            for key in sorted(missing, key=_estimated_cost, reverse=True):
                self._store(key, run_experiment(self._spec(key)))
            return len(missing)

        workers = min(self.jobs, len(missing))
        chunks = _make_chunks(missing, workers * _CHUNKS_PER_WORKER)
        cache_dir = str(self.cache.directory) if self.cache is not None else None
        # Build the database in the parent first: fork-start workers
        # then inherit the page images instead of regenerating TPC-H
        # once per interpreter (spawn-start platforms still rebuild,
        # but only once per worker thanks to chunking).
        DatabaseCache.get(self.tpch)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_chunk, [self._spec(k) for k in chunk], cache_dir
                ): chunk
                for chunk in chunks
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    chunk = futures[fut]
                    # .result() re-raises pool-level errors (e.g. a
                    # killed worker) here in the parent.
                    results, failure = fut.result()
                    for key, result in zip(chunk, results):
                        self._store(key, result)
                    if failure is not None:
                        index, exc = failure
                        for f in pending:
                            f.cancel()
                        raise RuntimeError(
                            f"sweep cell {chunk[index]} failed in worker"
                        ) from exc
        return len(missing)
