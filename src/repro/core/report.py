"""Plain-text rendering of regenerated figures.

The benchmark harness prints these tables; EXPERIMENTS.md embeds them.
Numbers are formatted compactly (engineering suffixes for counters,
fixed precision for rates).
"""

from __future__ import annotations

from typing import List

from ..units import fmt_count
from .figures import FigureData


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return fmt_count(value) if abs(value) >= 10_000 else str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.2e}"
        if abs(value) >= 10_000:
            return fmt_count(value)
        return f"{value:.3f}"
    return str(value)


def render_table(fig: FigureData) -> str:
    """Render one figure as an aligned ASCII table."""
    cols = list(fig.columns)
    cells: List[List[str]] = [[_fmt(row.get(c, "")) for c in cols] for row in fig.rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
        for i, c in enumerate(cols)
    ]
    lines = [f"== {fig.fig_id}: {fig.title} =="]
    if fig.notes:
        lines.append(f"   ({fig.notes})")
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def render_markdown(fig: FigureData) -> str:
    """Render one figure as a GitHub-flavoured markdown table."""
    cols = list(fig.columns)
    lines = [f"**{fig.fig_id}: {fig.title}**", ""]
    if fig.notes:
        lines.insert(1, f"*{fig.notes}*")
    lines.append("| " + " | ".join(cols) + " |")
    lines.append("|" + "---|" * len(cols))
    for row in fig.rows:
        lines.append("| " + " | ".join(_fmt(row.get(c, "")) for c in cols) + " |")
    return "\n".join(lines)


def render_series(fig: FigureData, metric: str, max_width: int = 40) -> str:
    """Render one metric of a figure as text bars grouped by query
    (a terminal stand-in for the paper's bar charts)."""
    values = [row[metric] for row in fig.rows]
    top = max(values) if values else 1.0
    lines = [f"== {fig.fig_id}: {fig.title} — {metric} =="]
    for row in fig.rows:
        v = row[metric]
        bar = "#" * max(1, int(max_width * v / top)) if top else ""
        label = " ".join(
            f"{k}={row[k]}" for k in fig.columns if k != metric and k in row
        )
        lines.append(f"{label:<40} {_fmt(v):>10} {bar}")
    return "\n".join(lines)
