"""Timeline sampling: counter time-series over a run.

The paper reports end-of-run counter totals; a timeline shows *phase*
behaviour — e.g. Q21's startup scan of ORDERS (streaming misses)
followed by the probe phase (metadata ping-pong).  The recorder hooks
the kernel's conservative-time sampler and snapshots machine-wide
counters at a fixed cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..mem.memsys import MemorySystem
from ..osim.scheduler import Kernel

#: Counter fields the recorder tracks per sample.
FIELDS = (
    "reads",
    "writes",
    "level1_misses",
    "coherent_misses",
    "miss_comm",
    "raw_latency",
)


@dataclass
class TimelineSample:
    """Machine-wide cumulative counters at time ``t``."""

    t: int
    values: Dict[str, int] = field(default_factory=dict)


class TimelineRecorder:
    """Samples machine-wide counters every ``interval_cycles``."""

    def __init__(self, memsys: MemorySystem, interval_cycles: int) -> None:
        self.memsys = memsys
        self.interval = interval_cycles
        self.samples: List[TimelineSample] = []

    def attach(self, kernel: Kernel) -> "TimelineRecorder":
        kernel.add_sampler(self.interval, self._on_sample)
        return self

    def _snapshot_values(self) -> Dict[str, int]:
        total = self.memsys.total_stats()
        return {
            "reads": total.reads,
            "writes": total.writes,
            "level1_misses": total.level1_misses,
            "coherent_misses": total.coherent_misses,
            "miss_comm": total.miss_kind[2],
            "raw_latency": total.raw_latency_cycles,
        }

    def _on_sample(self, t: int) -> None:
        self.samples.append(TimelineSample(t, self._snapshot_values()))

    def finalize(self) -> None:
        """Append a terminal sample with the end-of-run totals."""
        last_t = self.samples[-1].t + self.interval if self.samples else self.interval
        self.samples.append(TimelineSample(last_t, self._snapshot_values()))

    # -- series views -------------------------------------------------------
    def cumulative(self, fieldname: str) -> List[int]:
        if fieldname not in FIELDS:
            raise KeyError(f"unknown timeline field {fieldname!r}")
        return [s.values[fieldname] for s in self.samples]

    def rate(self, fieldname: str) -> List[int]:
        """Per-interval deltas (the phase view)."""
        cum = self.cumulative(fieldname)
        return [b - a for a, b in zip([0] + cum, cum)]

    def times(self) -> List[int]:
        return [s.t for s in self.samples]


def record_timeline(
    kernel: Kernel,
    memsys: MemorySystem,
    interval_cycles: int,
) -> TimelineRecorder:
    """Attach a recorder to a not-yet-run kernel; call ``kernel.run()``
    afterwards and then ``recorder.finalize()``."""
    return TimelineRecorder(memsys, interval_cycles).attach(kernel)
