"""Programmatic validation of the paper's qualitative claims.

Each :class:`Claim` states one sentence from the paper, a figure id,
and a check over a :class:`~repro.core.sweep.SweepRunner`.  Running
:func:`validate_all` produces the paper-vs-measured scoreboard that
EXPERIMENTS.md records; the integration test suite asserts the same
claims with tighter tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from . import metrics
from .sweep import SweepRunner


@dataclass
class ClaimResult:
    claim_id: str
    figure: str
    statement: str
    holds: bool
    measured: str


@dataclass(frozen=True)
class Claim:
    claim_id: str
    figure: str
    statement: str
    check: Callable[[SweepRunner], "tuple[bool, str]"]

    def evaluate(self, runner: SweepRunner) -> ClaimResult:
        holds, measured = self.check(runner)
        return ClaimResult(self.claim_id, self.figure, self.statement, holds, measured)


def _cpm(r: SweepRunner, q: str, p: str, n: int) -> float:
    res = r.cell(q, p, n)
    return metrics.cycles_per_million(res.mean, res.machine)


def _check_fig2a(r: SweepRunner):
    gaps = []
    for q in ("Q6", "Q21", "Q12"):
        hpv = r.cell(q, "hpv", 1).mean.cycles
        sgi = r.cell(q, "sgi", 1).mean.cycles
        gaps.append(abs(hpv - sgi) / max(hpv, sgi))
    return max(gaps) < 0.2, f"max 1-proc cycle gap {max(gaps):.1%}"


def _check_fig2b(r: SweepRunner):
    ratios = [
        r.cell(q, "sgi", 8).mean.cycles / r.cell(q, "hpv", 8).mean.cycles
        for q in ("Q6", "Q21", "Q12")
    ]
    return min(ratios) > 1.0, (
        "SGI/HPV 8-proc cycle ratios " + ", ".join(f"{x:.2f}" for x in ratios)
    )


def _check_fig3_band(r: SweepRunner):
    values = []
    for q in ("Q6", "Q21", "Q12"):
        for p in ("hpv", "sgi"):
            for n in (1, 8):
                res = r.cell(q, p, n)
                values.append(metrics.cpi(res.mean, res.machine))
    return (
        min(values) >= 1.2 and max(values) <= 1.9,
        f"CPI range [{min(values):.2f}, {max(values):.2f}] (paper: 1.3-1.6)",
    )


def _check_fig3_growth(r: SweepRunner):
    oks, notes = [], []
    for q in ("Q6", "Q21", "Q12"):
        def cpi(p, n):
            res = r.cell(q, p, n)
            return metrics.cpi(res.mean, res.machine)

        d_sgi = cpi("sgi", 8) - cpi("sgi", 1)
        d_hpv = cpi("hpv", 8) - cpi("hpv", 1)
        oks.append(d_sgi > d_hpv)
        notes.append(f"{q}: ΔSGI={d_sgi:+.2f} ΔHPV={d_hpv:+.2f}")
    return all(oks), "; ".join(notes)


def _check_fig4_q6(r: SweepRunner):
    ratio = (
        r.cell("Q6", "sgi", 1).mean.level1_misses
        / r.cell("Q6", "hpv", 1).mean.level1_misses
    )
    return 1.2 < ratio < 4.0, f"Q6 SGI-L1/HPV miss ratio {ratio:.2f} (paper ~2.3)"


def _check_fig4_q21(r: SweepRunner):
    r6 = (
        r.cell("Q6", "sgi", 1).mean.level1_misses
        / r.cell("Q6", "hpv", 1).mean.level1_misses
    )
    r21 = (
        r.cell("Q21", "sgi", 1).mean.level1_misses
        / r.cell("Q21", "hpv", 1).mean.level1_misses
    )
    return r21 > 3 * r6, f"Q21 ratio {r21:.1f} vs Q6 ratio {r6:.1f} (paper ~12 vs ~2.3)"


def _check_fig4_l2(r: SweepRunner):
    sgi = r.cell("Q21", "sgi", 1).mean
    hpv = r.cell("Q21", "hpv", 1).mean
    return (
        sgi.coherent_misses < hpv.level1_misses,
        f"Q21 SGI-L2 {sgi.coherent_misses} < HPV {hpv.level1_misses}",
    )


def _check_fig5(r: SweepRunner):
    oks, growths = [], []
    for q in ("Q6", "Q21", "Q12"):
        series = [_cpm(r, q, "sgi", n) for n in (1, 2, 4, 8)]
        oks.append(all(b > a for a, b in zip(series, series[1:])))
        growths.append(series[-1] / series[0] - 1)
    return all(oks), (
        "Origin cycles/1M-instr growth 1->8: "
        + ", ".join(f"{g:+.0%}" for g in growths)
    )


def _check_fig6_density(r: SweepRunner):
    def l2pm(q):
        res = r.cell(q, "sgi", 1)
        return metrics.l2_misses_per_million(res.mean, res.machine)

    q21, q6, q12 = l2pm("Q21"), l2pm("Q6"), l2pm("Q12")
    return (
        q21 < 0.5 * q6 and q21 < 0.5 * q12,
        f"L2/1M-instr: Q21 {q21:.0f} vs Q6 {q6:.0f}, Q12 {q12:.0f}",
    )


def _check_fig6_comm(r: SweepRunner):
    q21 = metrics.comm_miss_fraction(r.cell("Q21", "sgi", 8).mean)
    q6 = metrics.comm_miss_fraction(r.cell("Q6", "sgi", 8).mean)
    return q21 > 0.5 > q6, f"comm fraction at 8 procs: Q21 {q21:.0%}, Q6 {q6:.0%}"


def _check_fig7(r: SweepRunner):
    oks, notes = [], []
    for q in ("Q6", "Q21", "Q12"):
        v1, v8 = _cpm(r, q, "hpv", 1), _cpm(r, q, "hpv", 8)
        oks.append(v1 < v8 < 1.25 * v1)
        notes.append(f"{q}: +{v8 / v1 - 1:.0%}")
    return all(oks), "V-Class growth 1->8: " + ", ".join(notes)


def _check_fig8(r: SweepRunner):
    oks, notes = [], []
    for q in ("Q6", "Q21", "Q12"):
        res1 = r.cell(q, "hpv", 1)
        res8 = r.cell(q, "hpv", 8)
        d1 = metrics.dcache_misses_per_million(res1.mean, res1.machine)
        d8 = metrics.dcache_misses_per_million(res8.mean, res8.machine)
        oks.append(d1 < d8 < 3 * d1)
        notes.append(f"{q}: {d1:.0f}->{d8:.0f}")
    return all(oks), "HPV Dmiss/1M-instr: " + "; ".join(notes)


def _check_fig9(r: SweepRunner):
    oks, notes = [], []
    strict_dips = 0
    for q in ("Q6", "Q12"):
        lat = {
            n: metrics.mean_memory_latency_cycles(r.cell(q, "hpv", n).mean)
            for n in (1, 2, 4)
        }
        # the bump at 2 must always show; the 2->4 relief is delicate
        # (it depends on how far the trailing scanner drifts behind the
        # leader) so per-query we allow it to merely flatten, requiring
        # a strict dip from at least one sequential query.
        oks.append(lat[2] > 1.1 * lat[1] and lat[4] < 1.03 * lat[2])
        if lat[4] < lat[2]:
            strict_dips += 1
        notes.append(f"{q}: {lat[1]:.0f}->{lat[2]:.0f}->{lat[4]:.0f}")
    oks.append(strict_dips >= 1)
    return all(oks), "HPV mean latency 1/2/4 procs: " + "; ".join(notes)


def _check_fig10_vol(r: SweepRunner):
    oks, notes = [], []
    for q in ("Q6", "Q21", "Q12"):
        m1 = r.cell(q, "hpv", 1).mean
        m8 = r.cell(q, "hpv", 8).mean
        oks.append(m1.vol_switches == 0 and m8.vol_switches > m8.invol_switches)
        notes.append(f"{q}: vol@8={m8.vol_switches} inv@8={m8.invol_switches}")
    return all(oks), "; ".join(notes)


def _check_fig10_invol(r: SweepRunner):
    rates = []
    for q in ("Q6", "Q21", "Q12"):
        res = r.cell(q, "hpv", 1)
        rates.append(metrics.switches_per_million(res.mean, res.machine)["involuntary"])
    spread = max(rates) / max(min(rates), 1e-9)
    return spread < 2.5, (
        "involuntary/1M-instr per query: " + ", ".join(f"{x:.2f}" for x in rates)
    )


CLAIMS: List[Claim] = [
    Claim("fig2a-equal-cycles", "Fig. 2(a)",
          "With one query process both machines need nearly the same cycles",
          _check_fig2a),
    Claim("fig2b-origin-more-cycles", "Fig. 2(b)",
          "With 8 query processes the Origin needs more cycles than the V-Class",
          _check_fig2b),
    Claim("fig3-cpi-band", "Fig. 3",
          "CPI for the three queries is low (paper: 1.3-1.6)", _check_fig3_band),
    Claim("fig3-cpi-growth", "Fig. 3",
          "CPI grows little on the V-Class, more on the Origin", _check_fig3_growth),
    Claim("fig4-q6-ratio", "Fig. 4",
          "Q6: Origin L1 misses are a small multiple of V-Class misses",
          _check_fig4_q6),
    Claim("fig4-q21-ratio", "Fig. 4",
          "Q21: the Origin-L1/V-Class miss ratio dwarfs Q6's", _check_fig4_q21),
    Claim("fig4-q21-l2", "Fig. 4",
          "Q21: the Origin L2 cuts misses below even the V-Class's 2MB cache",
          _check_fig4_l2),
    Claim("fig5-origin-growth", "Fig. 5",
          "Origin thread time rises as query processes are added", _check_fig5),
    Claim("fig6-q21-low-density", "Fig. 6",
          "Q21's L2 miss density is far below Q6/Q12 (index locality)",
          _check_fig6_density),
    Claim("fig6-comm-major", "Fig. 6",
          "At 8 processes communication misses dominate Q21's L2 misses "
          "but not Q6's", _check_fig6_comm),
    Claim("fig7-vclass-slow", "Fig. 7",
          "V-Class thread time grows only slowly with process count", _check_fig7),
    Claim("fig8-moderate-misses", "Fig. 8",
          "V-Class D-cache misses increase moderately; cold/capacity dominate",
          _check_fig8),
    Claim("fig9-latency-bump", "Fig. 9",
          "V-Class memory latency jumps at 2 processes and eases at 4",
          _check_fig9),
    Claim("fig10-voluntary", "Fig. 10",
          "Voluntary switches appear with concurrency and dominate by 8 "
          "processes", _check_fig10_vol),
    Claim("fig10-involuntary", "Fig. 10",
          "Involuntary switch rate is not a function of query type",
          _check_fig10_invol),
]


def validate_all(runner: SweepRunner) -> List[ClaimResult]:
    """Evaluate every claim; the sweep is shared and memoized."""
    return [c.evaluate(runner) for c in CLAIMS]


def scoreboard(results: List[ClaimResult]) -> str:
    """Human-readable claim scoreboard."""
    lines = ["claim".ljust(26) + "figure".ljust(11) + "holds  measured"]
    lines.append("-" * 78)
    for res in results:
        lines.append(
            res.claim_id.ljust(26)
            + res.figure.ljust(11)
            + ("yes    " if res.holds else "NO     ")
            + res.measured
        )
    passed = sum(r.holds for r in results)
    lines.append(f"\n{passed}/{len(results)} paper claims reproduced")
    return "\n".join(lines)
