"""Pluggable sweep executors: local pool, subprocess hosts, multi-host.

:class:`~repro.core.parallel.ParallelSweepRunner`'s resilient engine is
transport-agnostic: it LPT-packs cells into chunks, tracks per-chunk
deadlines, classifies faults, and retries — while a
:class:`SweepExecutor` owns *where* chunks actually run.  Three
implementations ship:

* :class:`LocalPoolExecutor` — the original in-process
  ``ProcessPoolExecutor`` fan-out, refactored out of
  :mod:`repro.core.parallel`.
* :class:`SubprocessHostExecutor` — one *host*: a worker subprocess
  speaking the length-prefixed JSON protocol of :mod:`repro.core.wire`
  on its stdio (``repro worker``).  Locally spawned it is the
  CI-testable stand-in for a remote machine; pointed at ``ssh:...`` it
  is the real thing — the protocol never changes.
* :class:`MultiHostExecutor` — N hosts behind one event queue,
  least-loaded (LPT) chunk assignment, per-host loss isolation: a dead
  host surfaces a non-fatal ``lost`` event and its unfinished cells
  requeue to the survivors, fatal only when *no* host remains.

The engine consumes executors through five verbs — ``start``,
``submit``, ``next_event``, ``expire``, ``abandon`` — plus ``close``
for the clean path.  Events are plain :class:`ExecEvent` records;
result payloads cross host boundaries as JSON (never pickles) and land
in the shared content-addressed caches, so identical cells are computed
once fleet-wide and a lost host costs only its in-flight cell.

Token discipline: the engine never reuses a chunk token within one
``execute`` call, and ignores events carrying unknown tokens — so a
straggler event from an abandoned generation can never corrupt a later
one.
"""

from __future__ import annotations

import os
import queue
import shlex
import subprocess
import sys
import threading
from collections import deque
from pathlib import Path
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, ReproError
from .experiment import DatabaseCache, ExperimentResult, ExperimentSpec
from .resilience import run_cell_guarded
from .resultcache import ResultCache, result_from_dict
from .sweep import CellKey
from .wire import (
    WireError,
    WorkerContext,
    cells_to_wire,
    read_frame,
    write_frame,
)


class ExecutorError(ReproError):
    """An executor could not be started (no pool, no live host)."""


@dataclass
class ExecEvent:
    """One executor occurrence the engine reacts to.

    ``kind`` is one of:

    * ``"cell"`` — one cell of chunk ``token`` finished with ``result``
      (``None`` when the payload could not be decoded — the engine
      validates and classifies that as a transient ``corrupt`` fault).
    * ``"chunk_done"`` — chunk ``token`` is over; ``failure`` is
      ``None`` or ``(index, error_str, cause_or_None)`` for the first
      cell that raised a deterministic error.
    * ``"lost"`` — the resource running ``tokens`` died; ``fatal`` when
      the whole executor went with it.
    * ``"heartbeat"`` — host liveness/topology (``payload``).
    """

    kind: str
    host: str = ""
    token: int = -1
    tokens: Tuple[int, ...] = ()
    index: int = -1
    result: Optional[ExperimentResult] = None
    source: str = "ran"
    failure: Optional[Tuple[int, str, Optional[BaseException]]] = None
    error: str = ""
    fatal: bool = False
    cause: Optional[BaseException] = None
    payload: dict = field(default_factory=dict)


class SweepExecutor:
    """Where sweep chunks run.  Subclasses implement the five verbs;
    the engine in :meth:`ParallelSweepRunner.execute` owns *what* runs,
    retries, and deadlines."""

    name = "executor"

    def plan_workers(self, n_units: int) -> int:
        """How many parallel lanes the engine should chunk for."""
        raise NotImplementedError

    @property
    def alive(self) -> bool:
        """Can this executor accept submissions without a restart?"""
        raise NotImplementedError

    def start(self, context: WorkerContext, n_units: int = 0) -> None:
        """(Re)provision resources; raises :class:`ExecutorError` when
        nothing could be brought up."""
        raise NotImplementedError

    def submit(self, token: int, keys: Sequence[CellKey], cost: float = 0.0) -> str:
        """Dispatch one chunk; returns the host label it went to."""
        raise NotImplementedError

    def next_event(self, timeout: Optional[float]) -> Optional[ExecEvent]:
        """Block up to ``timeout`` seconds (``None`` = indefinitely)
        for the next event; ``None`` on timeout."""
        raise NotImplementedError

    def expire(self, tokens: Sequence[int]) -> Tuple[List[int], bool]:
        """Kill the resources running ``tokens`` (hung chunks).
        Returns ``(collateral, fatal)``: other in-flight tokens that
        died with them (the engine requeues those unpenalized) and
        whether the executor as a whole is now down."""
        raise NotImplementedError

    def abandon(self) -> List[int]:
        """Tear everything down; returns the tokens still in flight."""
        raise NotImplementedError

    def close(self) -> None:
        """Clean shutdown (all work done)."""
        raise NotImplementedError

    def host_info(self) -> Dict[str, dict]:
        """Per-host topology (``{label: {"host_cpus": ...}}``)."""
        return {}


# -- worker entry points (module-level so they pickle by reference) ---------

def _run_cell(spec: ExperimentSpec) -> ExperimentResult:
    """Single-cell pool-worker entry point.  Kept for API compatibility
    and tests."""
    from .experiment import run_experiment

    return run_experiment(spec)


def _run_chunk(
    specs: Sequence[ExperimentSpec],
    cache_dir: Optional[str],
    trace_dir: Optional[str] = None,
) -> Tuple[
    List[ExperimentResult], Optional[Tuple[int, BaseException]], List[str]
]:
    """Pool-worker chunk entry point: run ``specs`` in order.

    Returns ``(results, failure, sources)`` where ``failure`` is
    ``None`` on success or ``(index, exception)`` for the first cell
    that raised — the results of the cells before it are still
    returned, so the parent can memoize partial progress — and
    ``sources`` records how each returned cell was satisfied
    (``cache``/``ran``/``captured``/``replay``).  With a ``cache_dir``,
    each cell is first looked up in (and, when run, written to) the
    shared on-disk result cache, so warm workers skip cells and a
    mid-chunk failure never loses finished cells.  With a
    ``trace_dir``, cells route through the shared on-disk
    :class:`~repro.trace.store.TraceStore` — the first cell of a
    workload captures its tape, every later cell (machine axis, other
    workers, other runs) replays it.  Each cell goes through
    :func:`~repro.core.resilience.run_cell_guarded`, the choke point
    where an ambient :class:`~repro.core.resilience.FaultPlan` injects
    crash/hang/corrupt faults.
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    trace_store = None
    if trace_dir is not None:
        from ..trace.store import TraceStore

        trace_store = TraceStore(trace_dir)
    results: List[ExperimentResult] = []
    sources: List[str] = []
    for i, spec in enumerate(specs):
        try:
            result, source = run_cell_guarded(spec, cache, trace_store)
        except Exception as exc:  # surfaced, with the cell, by the parent
            return results, (i, exc), sources
        results.append(result)
        sources.append(source)
    return results, None, sources


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a broken or hung pool without waiting on it.

    A hung worker cannot be cancelled through the executor API, so the
    pool is shut down without waiting and its processes terminated
    directly — any cells it finished are already in the on-disk result
    cache, so nothing durable is lost."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - Python < 3.9
        pool.shutdown(wait=False)
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass


class LocalPoolExecutor(SweepExecutor):
    """The in-process ``ProcessPoolExecutor`` lane — chunks run in
    forked/spawned children of this interpreter, specs cross the
    boundary as pickled frozen dataclasses (same machine, same build,
    so pickling is safe here — and only here)."""

    name = "local-pool"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._context: Optional[WorkerContext] = None
        self._futures: Dict[object, int] = {}
        self._chunks: Dict[int, List[CellKey]] = {}
        self._ready: deque = deque()

    def plan_workers(self, n_units: int) -> int:
        return max(1, min(self.jobs, n_units))

    @property
    def alive(self) -> bool:
        return self._pool is not None

    def start(self, context: WorkerContext, n_units: int = 0) -> None:
        if self._pool is not None:
            return
        self._context = context
        # Build the database in the parent first: fork-start workers
        # then inherit the page images instead of regenerating TPC-H
        # once per interpreter (spawn-start platforms still rebuild,
        # but only once per worker thanks to chunking).
        DatabaseCache.get(context.tpch)
        self._pool = ProcessPoolExecutor(
            max_workers=self.plan_workers(max(n_units, 1))
        )

    def submit(self, token: int, keys: Sequence[CellKey], cost: float = 0.0) -> str:
        assert self._pool is not None and self._context is not None
        specs = [self._context.spec(k) for k in keys]
        fut = self._pool.submit(
            _run_chunk, specs, self._context.cache_dir, self._context.trace_dir
        )
        self._futures[fut] = token
        self._chunks[token] = list(keys)
        return self.name

    def next_event(self, timeout: Optional[float]) -> Optional[ExecEvent]:
        if self._ready:
            return self._ready.popleft()
        if not self._futures:
            return None
        done, _pending = wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        for fut in done:
            token = self._futures.pop(fut)
            self._chunks.pop(token, None)
            try:
                results, failure, sources = fut.result()
            except Exception as exc:
                # The pool is broken — this chunk's worker (or a
                # sibling's) died mid-flight.  The whole pool goes with
                # it: fatal, so the engine abandons and rebuilds.
                self._ready.append(ExecEvent(
                    kind="lost", host=self.name, tokens=(token,),
                    error=f"worker died ({exc!r})", cause=exc, fatal=True,
                ))
                continue
            for i, (result, source) in enumerate(zip(results, sources)):
                self._ready.append(ExecEvent(
                    kind="cell", host=self.name, token=token, index=i,
                    result=result, source=source,
                ))
            fail = None
            if failure is not None:
                index, exc = failure
                fail = (index, repr(exc), exc)
            self._ready.append(ExecEvent(
                kind="chunk_done", host=self.name, token=token, failure=fail,
            ))
        return self._ready.popleft() if self._ready else None

    def expire(self, tokens: Sequence[int]) -> Tuple[List[int], bool]:
        dropped = set(tokens)
        collateral = [t for t in self._chunks if t not in dropped]
        self._teardown()
        return collateral, True

    def abandon(self) -> List[int]:
        tokens = list(self._chunks)
        self._teardown()
        return tokens

    def _teardown(self) -> None:
        if self._pool is not None:
            _kill_pool(self._pool)
        self._pool = None
        self._futures.clear()
        self._chunks.clear()
        self._ready.clear()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
        self._pool = None
        self._futures.clear()
        self._chunks.clear()
        self._ready.clear()

    def host_info(self) -> Dict[str, dict]:
        return {self.name: {"host_cpus": os.cpu_count() or 1, "jobs": self.jobs}}


def host_argv(spec: str) -> List[str]:
    """The command line that brings up one host's ``repro worker``.

    * ``local`` / ``localhost`` — this interpreter, a fresh process.
    * ``ssh:user@host`` — the worker on a remote machine (the remote
      end runs the same frame protocol on its stdio, which is exactly
      what ssh transports).
    * ``cmd:<shell words>`` — escape hatch for exotic transports
      (containers, job schedulers); the command must speak the worker
      protocol on its stdio.
    """
    if spec in ("local", "localhost"):
        return [sys.executable, "-m", "repro", "worker"]
    if spec.startswith("ssh:"):
        target = spec[len("ssh:"):]
        if not target:
            raise ConfigError("ssh host spec needs a target (ssh:user@host)")
        return ["ssh", "-o", "BatchMode=yes", target, "repro", "worker"]
    if spec.startswith("cmd:"):
        argv = shlex.split(spec[len("cmd:"):])
        if not argv:
            raise ConfigError("cmd host spec needs a command")
        return argv
    raise ConfigError(
        f"unknown host spec {spec!r} (use local, ssh:user@host, or cmd:...)"
    )


def parse_hosts(raw) -> List[str]:
    """Parse a ``--hosts``/``REPRO_HOSTS`` value into host specs.

    A comma-separated list; an integer entry ``N`` is shorthand for
    ``N`` local subprocess hosts (``--hosts 4`` simulates a four-host
    fleet on one machine — the CI topology)."""
    if isinstance(raw, (list, tuple)):
        parts = [str(p) for p in raw]
    else:
        parts = str(raw).split(",")
    specs: List[str] = []
    for part in parts:
        part = part.strip()
        if not part:
            continue
        if part.isdigit():
            n = int(part)
            if n < 1:
                raise ConfigError("host count must be >= 1")
            specs.extend(["local"] * n)
        else:
            specs.append(part)
    if not specs:
        raise ConfigError("--hosts needs at least one host spec")
    return specs


class SubprocessHostExecutor(SweepExecutor):
    """One sweep host: a worker subprocess speaking the
    :mod:`repro.core.wire` frame protocol on its stdio.

    A reader thread drains the worker's stdout into an event queue
    (optionally shared with sibling hosts by
    :class:`MultiHostExecutor`); stdin carries config and chunk frames.
    Any stream surprise — EOF with chunks in flight, a garbage frame —
    declares the host *lost*: its in-flight tokens ride out on one
    ``lost`` event and the process is killed, never limped along.
    """

    def __init__(
        self,
        host: str = "local",
        label: Optional[str] = None,
        events: Optional["queue.Queue"] = None,
    ) -> None:
        self.host = host
        self.label = label or host
        self.name = f"host:{self.label}"
        self._events: "queue.Queue" = events if events is not None else queue.Queue()
        self._proc: Optional[subprocess.Popen] = None
        self._context: Optional[WorkerContext] = None
        self._chunks: Dict[int, List[CellKey]] = {}
        self._lock = threading.Lock()
        self._dead = False
        self._expected_exit = False
        #: Topology reported by the worker's hello frame.
        self.host_cpus: Optional[int] = None
        self.worker_pid: Optional[int] = None

    def plan_workers(self, n_units: int) -> int:
        return 1  # one worker interpreter per host

    @property
    def alive(self) -> bool:
        return (
            self._proc is not None
            and self._proc.poll() is None
            and not self._dead
        )

    def start(self, context: WorkerContext, n_units: int = 0) -> None:
        if self.alive:
            return
        self._context = context
        self._dead = False
        self._expected_exit = False
        env = dict(os.environ)
        env["REPRO_WORKER"] = "1"  # arm worker-scoped fault plans
        if not self.host.startswith("ssh:"):
            # A local worker must import the same ``repro`` tree as the
            # coordinator even when the coordinator got it via sys.path
            # (a script, a pytest run) rather than an installed package
            # or an exported PYTHONPATH.
            pkg_root = str(Path(__file__).resolve().parents[2])
            parts = [pkg_root] + [
                p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
            ]
            env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        try:
            self._proc = subprocess.Popen(
                host_argv(self.host),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=env,
            )
            write_frame(self._proc.stdin, context.to_message())
        except (OSError, ValueError) as exc:
            self._proc = None
            raise ExecutorError(
                f"host {self.label}: could not start worker ({exc})"
            ) from exc
        reader = threading.Thread(
            target=self._read_loop, args=(self._proc,),
            name=f"repro-host-{self.label}", daemon=True,
        )
        reader.start()

    # -- reader thread ------------------------------------------------------
    def _read_loop(self, proc: subprocess.Popen) -> None:
        error = ""
        try:
            while True:
                message = read_frame(proc.stdout)
                if message is None:
                    break
                self._handle(message)
        except WireError as exc:
            error = str(exc)
        except Exception as exc:  # pragma: no cover - defensive
            error = repr(exc)
        if self._expected_exit:
            return
        try:
            rc = proc.wait(timeout=5)
        except Exception:
            rc = proc.poll()
        with self._lock:
            self._dead = True
            tokens = tuple(self._chunks)
            self._chunks.clear()
        self._events.put(ExecEvent(
            kind="lost", host=self.label, tokens=tokens, fatal=True,
            error=error or f"worker exited with code {rc}",
            payload={"remote": True, "exit_code": rc},
        ))

    def _handle(self, message: dict) -> None:
        op = message.get("op")
        if op == "hello":
            self.host_cpus = message.get("host_cpus")
            self.worker_pid = message.get("pid")
            self._events.put(ExecEvent(
                kind="heartbeat", host=self.label,
                payload={"hello": True, "host_cpus": self.host_cpus,
                         "pid": self.worker_pid},
            ))
        elif op == "heartbeat":
            self._events.put(ExecEvent(
                kind="heartbeat", host=self.label,
                payload={"token": message.get("token"),
                         "n_cells": message.get("n_cells")},
            ))
        elif op == "cell_done":
            token = message.get("token")
            index = message.get("index")
            with self._lock:
                keys = self._chunks.get(token)
            result = None
            if (
                keys is not None
                and isinstance(index, int)
                and 0 <= index < len(keys)
                and self._context is not None
            ):
                try:
                    result = result_from_dict(
                        self._context.spec(keys[index]), message["result"]
                    )
                except Exception:
                    # Mangled payload: surface a None result — the
                    # engine's validate_result turns it into a
                    # transient "corrupt" fault for that one cell.
                    result = None
            self._events.put(ExecEvent(
                kind="cell", host=self.label, token=token if token is not None else -1,
                index=index if isinstance(index, int) else -1,
                result=result, source=str(message.get("source", "ran")),
            ))
        elif op == "chunk_done":
            token = message.get("token")
            with self._lock:
                self._chunks.pop(token, None)
            failure = message.get("failure")
            fail = None
            if failure is not None:
                try:
                    fail = (int(failure[0]), str(failure[1]), None)
                except (TypeError, ValueError, IndexError):
                    fail = (-1, str(failure), None)
            self._events.put(ExecEvent(
                kind="chunk_done", host=self.label,
                token=token if token is not None else -1, failure=fail,
            ))
        else:
            raise WireError(f"unexpected frame op {op!r} from host {self.label}")

    # -- engine verbs -------------------------------------------------------
    def submit(self, token: int, keys: Sequence[CellKey], cost: float = 0.0) -> str:
        with self._lock:
            if self._dead:
                self._events.put(ExecEvent(
                    kind="lost", host=self.label, tokens=(token,), fatal=True,
                    error="host is down", payload={"remote": True},
                ))
                return self.label
            self._chunks[token] = list(keys)
        try:
            write_frame(self._proc.stdin, {
                "op": "chunk", "token": token, "cells": cells_to_wire(keys),
            })
        except (OSError, ValueError) as exc:
            with self._lock:
                still_mine = self._chunks.pop(token, None) is not None
            if still_mine:
                self._events.put(ExecEvent(
                    kind="lost", host=self.label, tokens=(token,), fatal=True,
                    error=f"write to host failed ({exc})",
                    payload={"remote": True},
                ))
        return self.label

    def next_event(self, timeout: Optional[float]) -> Optional[ExecEvent]:
        try:
            if timeout is None:
                return self._events.get()
            return self._events.get(timeout=max(0.0, timeout))
        except queue.Empty:
            return None

    def expire(self, tokens: Sequence[int]) -> Tuple[List[int], bool]:
        self.kill()
        dropped = set(tokens)
        with self._lock:
            collateral = [t for t in self._chunks if t not in dropped]
            self._chunks.clear()
        return collateral, True

    def abandon(self) -> List[int]:
        self.kill()
        with self._lock:
            tokens = list(self._chunks)
            self._chunks.clear()
        return tokens

    def kill(self) -> None:
        """Hard-stop the worker (hung or being abandoned); the reader
        thread sees the EOF but stays quiet (`_expected_exit`)."""
        self._expected_exit = True
        with self._lock:
            self._dead = True
        proc = self._proc
        if proc is not None:
            try:
                proc.kill()
            except Exception:
                pass
            try:
                proc.stdin.close()
            except Exception:
                pass
            try:
                proc.wait(timeout=5)
            except Exception:
                pass

    def close(self) -> None:
        self._expected_exit = True
        proc = self._proc
        if proc is None:
            return
        try:
            write_frame(proc.stdin, {"op": "shutdown"})
            proc.stdin.close()
            proc.wait(timeout=10)
        except Exception:
            self.kill()
        self._proc = None

    def host_info(self) -> Dict[str, dict]:
        return {self.label: {
            "spec": self.host,
            "host_cpus": self.host_cpus,
            "worker_pid": self.worker_pid,
            "alive": self.alive,
        }}


class MultiHostExecutor(SweepExecutor):
    """N hosts, one event queue, least-loaded chunk placement.

    The engine submits chunks heaviest-first (LPT order), and each
    chunk goes to the live host with the least outstanding estimated
    cost — greedy LPT across the fleet.  A dead host is a *non-fatal*
    loss while any sibling survives: its in-flight tokens come back on
    a ``lost`` event and the engine requeues the unfinished cells,
    which the next generation places on the survivors.  Only when every
    host is down does the executor report fatal and the engine falls
    back (multi-host → local pool → serial).
    """

    name = "multi-host"

    def __init__(self, hosts) -> None:
        specs = parse_hosts(hosts)
        self._events: "queue.Queue" = queue.Queue()
        self.hosts: List[SubprocessHostExecutor] = [
            SubprocessHostExecutor(
                spec, label=f"{spec}#{i}", events=self._events
            )
            for i, spec in enumerate(specs)
        ]
        self._owner: Dict[int, SubprocessHostExecutor] = {}
        self._cost: Dict[int, float] = {}
        self._load: Dict[str, float] = {}
        #: Hosts lost over this executor's lifetime (reported in the
        #: sweep report).
        self.host_losses = 0

    def plan_workers(self, n_units: int) -> int:
        return max(1, min(len(self.hosts), n_units))

    @property
    def alive(self) -> bool:
        return any(h.alive for h in self.hosts)

    def start(self, context: WorkerContext, n_units: int = 0) -> None:
        errors = []
        for h in self.hosts:
            if h.alive:
                continue
            try:
                h.start(context)
            except ExecutorError as exc:
                errors.append(str(exc))
        if not self.alive:
            raise ExecutorError(
                "no sweep host could be started: " + "; ".join(errors)
            )

    def submit(self, token: int, keys: Sequence[CellKey], cost: float = 0.0) -> str:
        live = [h for h in self.hosts if h.alive] or self.hosts
        host = min(live, key=lambda h: self._load.get(h.label, 0.0))
        self._owner[token] = host
        self._cost[token] = cost
        self._load[host.label] = self._load.get(host.label, 0.0) + cost
        return host.submit(token, keys, cost)

    def _settle(self, token: int) -> None:
        host = self._owner.pop(token, None)
        cost = self._cost.pop(token, 0.0)
        if host is not None:
            self._load[host.label] = max(
                0.0, self._load.get(host.label, 0.0) - cost
            )

    def next_event(self, timeout: Optional[float]) -> Optional[ExecEvent]:
        try:
            if timeout is None:
                event = self._events.get()
            else:
                event = self._events.get(timeout=max(0.0, timeout))
        except queue.Empty:
            return None
        if event.kind == "chunk_done":
            self._settle(event.token)
        elif event.kind == "lost":
            self.host_losses += 1
            for token in event.tokens:
                self._settle(token)
            # One dead host is survivable; a dead fleet is fatal.
            event.fatal = not self.alive
        return event

    def expire(self, tokens: Sequence[int]) -> Tuple[List[int], bool]:
        hosts = []
        for token in tokens:
            host = self._owner.get(token)
            if host is not None and host not in hosts:
                hosts.append(host)
        collateral: List[int] = []
        expired = set(tokens)
        for host in hosts:
            mine, _fatal = host.expire(
                [t for t in expired if self._owner.get(t) is host]
            )
            collateral.extend(mine)
        for token in list(expired) + collateral:
            self._settle(token)
        return collateral, not self.alive

    def abandon(self) -> List[int]:
        tokens: List[int] = []
        for host in self.hosts:
            tokens.extend(host.abandon())
        for token in list(self._owner):
            if token not in tokens:
                tokens.append(token)
        self._owner.clear()
        self._cost.clear()
        self._load.clear()
        # Drain straggler events from the dead generation; the engine
        # ignores unknown tokens anyway, this just keeps the queue tidy.
        while True:
            try:
                self._events.get_nowait()
            except queue.Empty:
                break
        return tokens

    def close(self) -> None:
        for host in self.hosts:
            host.close()

    def host_info(self) -> Dict[str, dict]:
        info: Dict[str, dict] = {}
        for host in self.hosts:
            info.update(host.host_info())
        return info


def select_executor(jobs: Optional[int] = None, hosts=None) -> Optional[SweepExecutor]:
    """The one place the three execution paths are chosen.

    * ``hosts`` set (a ``--hosts`` string, an iterable of host specs,
      or an int) → :class:`MultiHostExecutor`;
    * else ``jobs > 1`` (default: ``os.cpu_count()``) →
      :class:`LocalPoolExecutor`;
    * else ``None`` — the engine runs serial in-process.
    """
    if hosts:
        return MultiHostExecutor(hosts)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1:
        return None
    return LocalPoolExecutor(jobs)
