"""Memoized experiment sweeps.

Several figures share cells of the (query x n_procs x platform)
matrix; :class:`SweepRunner` runs each cell at most once per
configuration so regenerating all nine figures costs one pass over the
grid.  A cell is keyed by everything settable per-call — ``(query,
platform, n_procs, repetitions, param_mode)`` — and an optional
:class:`~repro.core.resultcache.ResultCache` makes the memo persistent
across interpreter runs.  :class:`~repro.core.parallel
.ParallelSweepRunner` subclasses this to fan :meth:`prewarm` out over
worker processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import DEFAULT_SIM, SimConfig
from ..mem.registry import REGISTRY
from ..tpch.datagen import TPCHConfig
from ..tpch.queries import PAPER_QUERIES
from .experiment import DEFAULT_TPCH, ExperimentResult, ExperimentSpec
from .resultcache import ResultCache

#: Process counts on the x-axis of Figs. 5-10.
NPROC_SWEEP: Tuple[int, ...] = (1, 2, 4, 6, 8)

#: A fully-specified sweep cell (the SweepRunner memo key).
CellKey = Tuple[str, str, int, int, str]


def normalize_cell(cell: Sequence) -> CellKey:
    """Pad a ``(query, platform, n_procs[, repetitions[, param_mode]])``
    tuple with the per-cell defaults."""
    query, platform, n_procs = cell[0], cell[1], int(cell[2])
    repetitions = int(cell[3]) if len(cell) > 3 else 1
    param_mode = cell[4] if len(cell) > 4 else "default"
    return (query, platform, n_procs, repetitions, param_mode)


def figure_grid_cells(
    queries: Iterable[str] = PAPER_QUERIES,
    platforms: Optional[Iterable[str]] = None,
    nprocs: Iterable[int] = NPROC_SWEEP,
) -> List[CellKey]:
    """Every cell Figs. 2-10 consume: the full paper test matrix.
    ``platforms`` defaults to the registry's paper pair; pass any
    registered names (or machine file paths) to sweep other machines."""
    if platforms is None:
        platforms = REGISTRY.paper_platforms()
    return [
        normalize_cell((q, p, n))
        for q in queries
        for p in platforms
        for n in nprocs
    ]


class SweepRunner:
    """Runs and caches experiment cells for one (sim, tpch) setting."""

    def __init__(
        self,
        sim: SimConfig = DEFAULT_SIM,
        tpch: TPCHConfig = DEFAULT_TPCH,
        verify_results: bool = False,
        cache: Optional[ResultCache] = None,
        trace_store=None,
    ) -> None:
        self.sim = sim
        self.tpch = tpch
        self.verify_results = verify_results
        self.cache = cache
        #: Optional :class:`~repro.trace.store.TraceStore`: machine-axis
        #: cells of the same workload execute once ("captured") and
        #: replay everywhere else ("replay") — see
        #: :func:`repro.trace.capture.run_or_replay`.
        self.trace_store = trace_store
        #: How each non-memoized cell was satisfied:
        #: ``ran``/``captured``/``replay`` counts.
        self.trace_sources: Dict[str, int] = {}
        self._cache: Dict[CellKey, ExperimentResult] = {}

    def _run(self, key: CellKey) -> ExperimentResult:
        """Execute one missing cell through the trace-routing front
        door (plain ``run_experiment`` when no trace store is set)."""
        from ..trace.capture import run_or_replay

        result, source = run_or_replay(self._spec(key), self.trace_store)
        self.count_source(source)
        return result

    def count_source(self, source: str) -> None:
        self.trace_sources[source] = self.trace_sources.get(source, 0) + 1

    def _spec(self, key: CellKey) -> ExperimentSpec:
        query, platform, n_procs, repetitions, param_mode = key
        return ExperimentSpec(
            query=query,
            platform=platform,
            n_procs=n_procs,
            repetitions=repetitions,
            param_mode=param_mode,
            sim=self.sim,
            tpch=self.tpch,
            verify_results=self.verify_results,
        )

    def _lookup(self, key: CellKey) -> Optional[ExperimentResult]:
        """In-memory memo first, then the persistent cache."""
        result = self._cache.get(key)
        if result is None and self.cache is not None:
            result = self.cache.get(self._spec(key))
            if result is not None:
                self._cache[key] = result
        return result

    def _store(self, key: CellKey, result: ExperimentResult) -> None:
        self._cache[key] = result
        if self.cache is not None:
            self.cache.put(result.spec, result)

    def cell(
        self,
        query,
        platform: Optional[str] = None,
        n_procs: Optional[int] = None,
        repetitions: int = 1,
        param_mode: str = "default",
    ) -> ExperimentResult:
        """One memoized cell.

        Accepts either expanded arguments — ``cell("Q6", "hpv", 2)`` —
        or a raw cell tuple / :data:`CellKey` as the single argument —
        ``cell(("Q6", "hpv", 2))`` — so callers never need to import
        :func:`normalize_cell` themselves.
        """
        if not isinstance(query, str):
            if platform is not None or n_procs is not None:
                raise TypeError(
                    "pass either one cell tuple or expanded arguments, not both"
                )
            key = normalize_cell(query)
        else:
            if platform is None or n_procs is None:
                raise TypeError("cell() needs query, platform, and n_procs")
            key = (query, platform, int(n_procs), repetitions, param_mode)
        result = self._lookup(key)
        if result is None:
            result = self._run(key)
            self._store(key, result)
        return result

    def prewarm(self, cells: Iterable[Sequence]) -> int:
        """Ensure every cell is memoized; return how many had to run.

        The serial implementation just walks the cells; the parallel
        runner overrides this to run the missing ones concurrently, so
        call it before a read-heavy phase (figure building) to get the
        fan-out.
        """
        ran = 0
        for cell in cells:
            key = normalize_cell(cell)
            if self._lookup(key) is None:
                self._store(key, self._run(key))
                ran += 1
        return ran

    def grid(
        self,
        queries: Iterable[str],
        platforms: Iterable[str],
        nprocs: Iterable[int],
    ) -> List[ExperimentResult]:
        cells = [
            normalize_cell((q, p, n))
            for q in queries
            for p in platforms
            for n in nprocs
        ]
        self.prewarm(cells)
        return [self.cell(*key) for key in cells]

    @property
    def n_cached(self) -> int:
        return len(self._cache)

    @property
    def cache_stats(self) -> dict:
        """Persistent-cache hit/miss counts (zeros when not enabled)."""
        if self.cache is None:
            return {"hits": 0, "misses": 0}
        return self.cache.stats
