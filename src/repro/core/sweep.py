"""Memoized experiment sweeps.

Several figures share cells of the (query x n_procs x platform)
matrix; :class:`SweepRunner` runs each cell at most once per
configuration so regenerating all nine figures costs one pass over the
grid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..config import DEFAULT_SIM, SimConfig
from ..tpch.datagen import TPCHConfig
from .experiment import DEFAULT_TPCH, ExperimentResult, ExperimentSpec, run_experiment

#: Process counts on the x-axis of Figs. 5-10.
NPROC_SWEEP: Tuple[int, ...] = (1, 2, 4, 6, 8)


class SweepRunner:
    """Runs and caches experiment cells for one (sim, tpch) setting."""

    def __init__(
        self,
        sim: SimConfig = DEFAULT_SIM,
        tpch: TPCHConfig = DEFAULT_TPCH,
        verify_results: bool = False,
    ) -> None:
        self.sim = sim
        self.tpch = tpch
        self.verify_results = verify_results
        self._cache: Dict[Tuple[str, str, int], ExperimentResult] = {}

    def cell(self, query: str, platform: str, n_procs: int) -> ExperimentResult:
        key = (query, platform, n_procs)
        result = self._cache.get(key)
        if result is None:
            spec = ExperimentSpec(
                query=query,
                platform=platform,
                n_procs=n_procs,
                sim=self.sim,
                tpch=self.tpch,
                verify_results=self.verify_results,
            )
            result = run_experiment(spec)
            self._cache[key] = result
        return result

    def grid(
        self,
        queries: Iterable[str],
        platforms: Iterable[str],
        nprocs: Iterable[int],
    ) -> List[ExperimentResult]:
        return [
            self.cell(q, p, n)
            for q in queries
            for p in platforms
            for n in nprocs
        ]

    @property
    def n_cached(self) -> int:
        return len(self._cache)
