"""Persistent, content-addressed experiment-result cache.

Regenerating the paper's figures costs one pass over the (query x
platform x n_procs) grid; after an unrelated edit it costs the same
pass again.  :class:`ResultCache` makes re-runs incremental: every
finished :class:`~repro.core.experiment.ExperimentResult` is serialized
to JSON under a key derived from everything that can change its
numbers — the full :class:`ExperimentSpec` (which embeds ``SimConfig``
and ``TPCHConfig``) plus a content hash of the ``repro`` package's
sources.  Any code edit therefore invalidates the whole cache; any
config change invalidates exactly the affected cells.

The cache stores only results produced through the platform lookup
(``platform(spec.platform).scaled(...)``) — the path every sweep uses.
Ablation runs that inject a custom :class:`MachineConfig` bypass the
sweep layer and are never cached.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from ..cpu.counters import CounterSnapshot
from ..mem.machine import platform
from ..obs.schema import SCHEMA_VERSION
from .experiment import ExperimentResult, ExperimentSpec, RunResult

#: Cache format version; bump on any serialization change.
FORMAT = 1


class ResultCacheWarning(UserWarning):
    """A persistent-cache entry could not be used (corrupt or stale)."""


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro`` (or ``~/.cache/repro``)."""
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    return base / "repro"


_code_version: Optional[str] = None


def code_version() -> str:
    """Content hash of every ``.py`` file in the ``repro`` package.

    Computed once per interpreter; editing any source file yields a new
    version and therefore a cold cache, which is what makes cached
    counters trustworthy without comparing simulator internals.
    """
    global _code_version
    if _code_version is None:
        pkg_root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _code_version = h.hexdigest()[:16]
    return _code_version


def spec_fingerprint(spec: ExperimentSpec) -> str:
    """Stable content address for one experiment cell.

    Mixes in the counter-schema version as well as the code hash, so a
    schema edit alone (reordered fields, a new counter) retires every
    persisted counter vector even if no ``.py`` content change slipped
    past ``code_version`` (e.g. a cache dir shared across checkouts)."""
    payload = {
        "format": FORMAT,
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "spec": asdict(spec),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable form of one result (machine omitted: it is a
    pure function of the spec on the sweep path)."""
    return {
        "format": FORMAT,
        "code": code_version(),
        "spec": asdict(result.spec),
        "runs": [
            {
                "per_process": [s.to_dict() for s in run.per_process],
                "wall_cycles": run.wall_cycles,
                "interconnect_queue_delay_mean": run.interconnect_queue_delay_mean,
                "n_backoffs": run.n_backoffs,
                "query_rows": run.query_rows,
            }
            for run in result.runs
        ],
    }


def result_from_dict(spec: ExperimentSpec, d: dict) -> ExperimentResult:
    """Rebuild a result for ``spec`` from its serialized form."""
    machine = platform(spec.platform).scaled(spec.sim.cache_scale_log2)
    runs = [
        RunResult(
            per_process=[CounterSnapshot.from_dict(s) for s in run["per_process"]],
            wall_cycles=run["wall_cycles"],
            interconnect_queue_delay_mean=run["interconnect_queue_delay_mean"],
            n_backoffs=run["n_backoffs"],
            query_rows=run["query_rows"],
        )
        for run in d["runs"]
    ]
    return ExperimentResult(spec=spec, machine=machine, runs=runs)


class ResultCache:
    """On-disk result store: one JSON file per experiment cell."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: Entries that existed but could not be parsed/rebuilt
        #: (truncated files, garbage bytes, missing fields).
        self.corrupt = 0
        #: Well-formed entries written by a different code/format
        #: version (the normal invalidate-on-edit path, but counted so
        #: an unexpectedly cold cache is explainable).
        self.stale = 0

    def _path(self, spec: ExperimentSpec) -> Path:
        return self.directory / f"{spec_fingerprint(spec)}.json"

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Load a cached result, or ``None`` (a miss).  A broken entry
        is never fatal: truncated/garbage/stale files all degrade to a
        miss with a counted :class:`ResultCacheWarning`."""
        path = self._path(spec)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1  # plain miss: nothing cached for this cell
            return None
        except UnicodeDecodeError:
            return self._reject(path, "corrupt", "undecodable bytes")
        try:
            d = json.loads(text)
            if not isinstance(d, dict):
                raise ValueError("entry is not a JSON object")
        except ValueError:
            return self._reject(path, "corrupt", "unparsable JSON")
        if d.get("format") != FORMAT or d.get("code") != code_version():
            return self._reject(
                path, "stale",
                f"written by code={d.get('code')!r} format={d.get('format')!r}",
            )
        try:
            result = result_from_dict(spec, d)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            return self._reject(path, "corrupt", f"bad structure ({exc})")
        self.hits += 1
        return result

    def _reject(self, path: Path, kind: str, why: str) -> None:
        """Count a bad entry as a miss; warn (stale entries warn only on
        the first occurrence — every code edit makes the whole cache
        stale, and one summary line beats thirty)."""
        self.misses += 1
        first_stale = kind == "stale" and self.stale == 0
        setattr(self, kind, getattr(self, kind) + 1)
        if kind == "corrupt" or first_stale:
            warnings.warn(
                f"result cache: {kind} entry {path.name} ignored ({why})",
                ResultCacheWarning,
                stacklevel=3,
            )
        return None

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> Path:
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique tmp per writer (mkstemp opens O_EXCL), then an atomic
        # rename: multiple hosts writing the same cell to a shared
        # cache directory race benignly — last rename wins with a
        # complete file, and a shared ".tmp" name can never interleave
        # two writers into a torn entry.  Dotted tmp names also stay
        # invisible to the "*.json" glob in :meth:`__len__`.
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                # Canonical key order: a result that crossed the wire
                # (whose dicts arrive sorted) must serialize to the
                # same bytes as one computed in-process, so distributed
                # and serial sweeps stay bitwise-comparable.
                fh.write(json.dumps(result_to_dict(result), sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @property
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stale": self.stale,
        }

    def describe(self) -> str:
        extra = ""
        if self.corrupt or self.stale:
            extra = f" ({self.corrupt} corrupt, {self.stale} stale)"
        return (
            f"result cache {self.directory}: "
            f"{self.hits} hits, {self.misses} misses{extra}"
        )

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.json"))
        except OSError:
            return 0
