"""Length-prefixed JSON frame protocol for distributed sweep hosts.

A coordinator (`:class:`~repro.core.executors.SubprocessHostExecutor`)
and a host worker (``repro worker``, :mod:`repro.core.hostworker`) talk
over a byte pipe — the worker's stdin/stdout, which is also exactly
what an ``ssh host repro worker`` transport provides.  Every message is
one *frame*: a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The length prefix makes framing self-describing
(no sentinels inside payloads to escape) and makes desynchronization
loud: a stream position that does not start with a plausible length
fails the :data:`MAX_FRAME` bound instead of feeding garbage to the
JSON parser indefinitely.

Only JSON-scalar data crosses the wire — cell keys as 5-element lists,
configs via ``dataclasses.asdict``, results via the existing
:func:`~repro.core.resultcache.result_to_dict` codec.  Nothing is ever
pickled, so a worker can be a different interpreter, a different
architecture, or (over ssh) a different machine entirely.

Message vocabulary (``op`` field):

coordinator -> worker
    * ``config`` — the :class:`WorkerContext` (sim/tpch/cache dirs);
      sent once, immediately after spawn.
    * ``chunk`` — ``{token, cells: [[q, p, np, rep, mode], ...]}``; the
      worker runs the cells in order.
    * ``shutdown`` — clean exit request (EOF on stdin means the same).

worker -> coordinator
    * ``hello`` — ``{host_cpus, pid}``; first frame after spawn, the
      per-host topology record the scaling benchmarks publish.
    * ``heartbeat`` — ``{token, n_cells}`` at chunk start (liveness).
    * ``cell_done`` — ``{token, index, source, result}`` streamed per
      finished cell, so a host lost mid-chunk only loses the cell in
      flight, never completed work.
    * ``chunk_done`` — ``{token, failure: [index, error] | null}``.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict, dataclass
from typing import List, Optional

from ..config import SimConfig
from ..errors import ReproError
from ..tpch.datagen import TPCHConfig
from .experiment import ExperimentSpec
from .sweep import CellKey

#: Upper bound on one frame's payload.  Real frames are tiny (a chunk
#: of cell keys, one serialized result); anything larger means the
#: stream desynchronized or a stray print corrupted stdout.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class WireError(ReproError):
    """The host-worker byte stream is broken (truncated frame, garbage
    payload, implausible length) — the owning host must be declared
    lost, never limped along."""


def write_frame(stream, message: dict) -> None:
    """Write one framed JSON message and flush it."""
    blob = json.dumps(message, sort_keys=True).encode("utf-8")
    stream.write(_HEADER.pack(len(blob)) + blob)
    stream.flush()


def _read_exact(stream, n: int) -> bytes:
    chunks = []
    while n > 0:
        piece = stream.read(n)
        if not piece:
            break
        chunks.append(piece)
        n -= len(piece)
    return b"".join(chunks)


def read_frame(stream) -> Optional[dict]:
    """Read one framed message; ``None`` on clean EOF (stream closed
    exactly on a frame boundary).  Anything else malformed raises
    :class:`WireError`."""
    header = _read_exact(stream, _HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise WireError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(
            f"frame length {length} exceeds {MAX_FRAME} — stream desynchronized"
        )
    blob = _read_exact(stream, length)
    if len(blob) < length:
        raise WireError(f"truncated frame body ({len(blob)}/{length} bytes)")
    try:
        message = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(f"undecodable frame payload ({exc})") from None
    if not isinstance(message, dict) or "op" not in message:
        raise WireError("frame payload is not an op message")
    return message


@dataclass(frozen=True)
class WorkerContext:
    """Everything a host worker needs to run cells: the sweep's
    configuration plus the *shared* cache/trace directories (the
    content-addressed stores double as the fleet-wide result bus)."""

    sim: SimConfig
    tpch: TPCHConfig
    verify_results: bool = False
    cache_dir: Optional[str] = None
    trace_dir: Optional[str] = None

    def spec(self, key: CellKey) -> ExperimentSpec:
        query, platform, n_procs, repetitions, param_mode = key
        return ExperimentSpec(
            query=query,
            platform=platform,
            n_procs=n_procs,
            repetitions=repetitions,
            param_mode=param_mode,
            sim=self.sim,
            tpch=self.tpch,
            verify_results=self.verify_results,
        )

    def to_message(self) -> dict:
        return {
            "op": "config",
            "sim": asdict(self.sim),
            "tpch": asdict(self.tpch),
            "verify_results": self.verify_results,
            "cache_dir": self.cache_dir,
            "trace_dir": self.trace_dir,
        }

    @classmethod
    def from_message(cls, message: dict) -> "WorkerContext":
        try:
            return cls(
                sim=SimConfig(**message["sim"]),
                tpch=TPCHConfig(**message["tpch"]),
                verify_results=bool(message.get("verify_results", False)),
                cache_dir=message.get("cache_dir"),
                trace_dir=message.get("trace_dir"),
            )
        except (KeyError, TypeError) as exc:
            raise WireError(f"bad config message ({exc!r})") from None


def cells_to_wire(cells) -> List[list]:
    """Cell keys as JSON rows (tuples do not survive JSON)."""
    return [list(key) for key in cells]


def cells_from_wire(rows) -> List[CellKey]:
    """JSON rows back to normalized cell keys (``WireError`` on junk)."""
    from .sweep import normalize_cell

    try:
        return [normalize_cell(tuple(row)) for row in rows]
    except (TypeError, ValueError, IndexError) as exc:
        raise WireError(f"bad cell rows ({exc!r})") from None
