"""Heterogeneous (mixed-query) experiments.

The paper's §3/§4 runs are homogeneous — every concurrent process
executes the same query type — but its title for §4, "Multiple (Diff)
Query Execution", invites the natural generalization: different
backends running *different* queries against the same database at the
same time.  This module provides that: one process per entry of
``queries``, all sharing buffers, locks and memory, with per-query
aggregated counters.

This is also where cross-query interference is measurable: e.g. a Q21
(index) stream sharing the machine with Q6 (sequential) streams sees
its communication misses rise as the scanners churn the shared
metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import DEFAULT_SIM, SimConfig
from ..cpu.counters import CounterSnapshot
from ..db.engine import Database
from ..errors import ConfigError
from ..mem.machine import MachineConfig, platform
from ..mem.memsys import MemorySystem
from ..osim.scheduler import Kernel
from ..tpch.datagen import TPCHConfig
from ..tpch.queries import QUERIES
from .experiment import DEFAULT_TPCH, DatabaseCache, _check_result
from .workload import make_query_process, snapshot_process


@dataclass(frozen=True)
class MixedSpec:
    """A heterogeneous run: process ``i`` executes ``queries[i]``."""

    queries: Tuple[str, ...] = ("Q6", "Q21")
    platform: str = "hpv"
    tpch: TPCHConfig = DEFAULT_TPCH
    sim: SimConfig = DEFAULT_SIM
    verify_results: bool = True

    def __post_init__(self) -> None:
        if not self.queries:
            raise ConfigError("a mixed run needs at least one query")
        for q in self.queries:
            if q not in QUERIES:
                raise ConfigError(f"unknown query {q!r}")
            if QUERIES[q].mutates:
                raise ConfigError(
                    f"{q} mutates the database and cannot join a mixed run"
                )


@dataclass
class MixedResult:
    """Outcome of one mixed run."""

    spec: MixedSpec
    machine: MachineConfig
    #: (query name, counters) per process, in spawn order.
    per_process: List[Tuple[str, CounterSnapshot]] = field(default_factory=list)
    wall_cycles: int = 0

    def by_query(self) -> Dict[str, CounterSnapshot]:
        """Mean counters of the processes running each query."""
        groups: Dict[str, List[CounterSnapshot]] = {}
        for q, snap in self.per_process:
            groups.setdefault(q, []).append(snap)
        out: Dict[str, CounterSnapshot] = {}
        for q, snaps in groups.items():
            acc = CounterSnapshot()
            for s in snaps:
                acc.add(s)
            out[q] = acc.scaled(1.0 / len(snaps))
        return out


def run_mixed_experiment(
    spec: MixedSpec, db: Optional[Database] = None
) -> MixedResult:
    """Run every query of ``spec.queries`` concurrently, one backend
    each, pinned to consecutive CPUs."""
    if db is None:
        db = DatabaseCache.get(spec.tpch)
    machine = platform(spec.platform).scaled(spec.sim.cache_scale_log2)
    if len(spec.queries) > machine.n_cpus:
        raise ConfigError(
            f"{len(spec.queries)} processes exceed {machine.name}'s CPUs"
        )
    memsys = MemorySystem(machine, db.aspace, fast_path=spec.sim.fast_path)
    kernel = Kernel(machine, memsys, spec.sim)
    db.reset_runtime()
    params_of: List[Dict] = []
    for pid, qname in enumerate(spec.queries):
        qdef = QUERIES[qname]
        params = qdef.params()
        params_of.append(params)
        gen, _ = make_query_process(db, qdef, params, pid, cpu=pid)
        kernel.spawn(gen, cpu=pid)
    kernel.run()

    if spec.verify_results:
        for pid, qname in enumerate(spec.queries):
            qdef = QUERIES[qname]
            expected = qdef.reference(db, params_of[pid])
            _check_result(qname, kernel.processes[pid].result, expected)

    result = MixedResult(spec=spec, machine=machine, wall_cycles=kernel.wall_cycles())
    for pid, qname in enumerate(spec.queries):
        result.per_process.append(
            (qname, snapshot_process(kernel.processes[pid], memsys.stats[pid], machine))
        )
    return result
