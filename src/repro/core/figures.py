"""Regeneration of every figure in the paper's evaluation.

Each builder returns a :class:`FigureData` whose rows are the series
the corresponding paper figure plots (and whose ``expectations``
describe the qualitative shape the paper reports, used by the
integration tests and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..mem.registry import REGISTRY
from ..tpch.queries import PAPER_QUERIES
from . import metrics
from .sweep import NPROC_SWEEP, CellKey, SweepRunner, normalize_cell

#: The platform axis of every numbered paper figure — the machines the
#: 2002 paper measured, derived from the registry rather than spelled
#: out per builder.  Registered non-paper machines are swept and
#: compared through ``repro sweep --platforms`` instead.
PAPER_PLATFORMS = REGISTRY.paper_platforms()


@dataclass
class FigureData:
    """One regenerated table/figure."""

    fig_id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> List:
        return [r[name] for r in self.rows]

    def select(self, **filters) -> List[Dict]:
        out = []
        for r in self.rows:
            if all(r.get(k) == v for k, v in filters.items()):
                out.append(r)
        return out

    def value(self, metric: str, **filters) -> float:
        rows = self.select(**filters)
        if len(rows) != 1:
            raise KeyError(f"{self.fig_id}: filters {filters} matched {len(rows)} rows")
        return rows[0][metric]


def fig2_thread_time(runner: SweepRunner, queries=PAPER_QUERIES) -> FigureData:
    """Fig. 2: thread time in cycles, 1 and 8 query processes."""
    fig = FigureData(
        "fig2",
        "Thread Time in Cycles",
        ("query", "platform", "n_procs", "cycles"),
        notes="Fig 2(a): 1 process; Fig 2(b): 8 processes.",
    )
    for q in queries:
        for plat in PAPER_PLATFORMS:
            for n in (1, 8):
                res = runner.cell(q, plat, n)
                fig.rows.append(
                    {
                        "query": q,
                        "platform": plat,
                        "n_procs": n,
                        "cycles": metrics.thread_time_cycles(res.mean),
                    }
                )
    return fig


def fig3_cpi(runner: SweepRunner, queries=PAPER_QUERIES) -> FigureData:
    """Fig. 3: cycles per instruction, 1 and 8 query processes."""
    fig = FigureData(
        "fig3",
        "Cycles Per Instruction",
        ("query", "platform", "n_procs", "cpi"),
    )
    for q in queries:
        for plat in PAPER_PLATFORMS:
            for n in (1, 8):
                res = runner.cell(q, plat, n)
                fig.rows.append(
                    {
                        "query": q,
                        "platform": plat,
                        "n_procs": n,
                        "cpi": metrics.cpi(res.mean, res.machine),
                    }
                )
    return fig


def fig4_dcache(runner: SweepRunner, queries=PAPER_QUERIES) -> FigureData:
    """Fig. 4: data-cache misses and miss rates per cache level."""
    fig = FigureData(
        "fig4",
        "Data Cache Misses / Miss Rates",
        ("query", "n_procs", "cache", "misses", "miss_rate"),
        notes="caches: HPV Dcache, SGI L1, SGI L2 (per paper Fig. 4 bars)",
    )
    for q in queries:
        for n in (1, 8):
            hpv = runner.cell(q, "hpv", n).mean
            sgi = runner.cell(q, "sgi", n).mean
            fig.rows.append(
                {
                    "query": q,
                    "n_procs": n,
                    "cache": "HPV",
                    "misses": hpv.level1_misses,
                    "miss_rate": metrics.level1_miss_rate(hpv),
                }
            )
            fig.rows.append(
                {
                    "query": q,
                    "n_procs": n,
                    "cache": "SGI-L1",
                    "misses": sgi.level1_misses,
                    "miss_rate": metrics.level1_miss_rate(sgi),
                }
            )
            fig.rows.append(
                {
                    "query": q,
                    "n_procs": n,
                    "cache": "SGI-L2",
                    "misses": sgi.coherent_misses,
                    "miss_rate": sgi.coherent_misses / max(sgi.data_refs, 1),
                }
            )
    return fig


def _sweep_fig(
    runner: SweepRunner,
    fig_id: str,
    title: str,
    platform: str,
    value_of: Callable,
    metric_name: str,
    queries=PAPER_QUERIES,
    nprocs=NPROC_SWEEP,
) -> FigureData:
    fig = FigureData(fig_id, title, ("query", "n_procs", metric_name))
    for q in queries:
        for n in nprocs:
            res = runner.cell(q, platform, n)
            fig.rows.append(
                {"query": q, "n_procs": n, metric_name: value_of(res.mean, res.machine)}
            )
    return fig


def fig5_origin_thread_time(runner: SweepRunner, **kw) -> FigureData:
    """Fig. 5: Origin thread time (cycles/1M instrs) vs process count."""
    return _sweep_fig(
        runner,
        "fig5",
        "Thread Time on Origin 2000 (cycles / 1M instrs)",
        "sgi",
        metrics.cycles_per_million,
        "cycles_per_minstr",
        **kw,
    )


def fig6_origin_l2(runner: SweepRunner, queries=PAPER_QUERIES, nprocs=NPROC_SWEEP) -> FigureData:
    """Fig. 6: Origin L2 data-cache misses per 1M instrs vs processes,
    with the communication-miss fraction behind the §4.1.2 claim."""
    fig = FigureData(
        "fig6",
        "L2 Data Cache Misses on Origin 2000 (per 1M instrs)",
        ("query", "n_procs", "l2_per_minstr", "comm_fraction"),
    )
    for q in queries:
        for n in nprocs:
            res = runner.cell(q, "sgi", n)
            fig.rows.append(
                {
                    "query": q,
                    "n_procs": n,
                    "l2_per_minstr": metrics.l2_misses_per_million(res.mean, res.machine),
                    "comm_fraction": metrics.comm_miss_fraction(res.mean),
                }
            )
    return fig


def fig7_vclass_thread_time(runner: SweepRunner, **kw) -> FigureData:
    """Fig. 7: V-Class thread time (cycles/1M instrs) vs process count."""
    return _sweep_fig(
        runner,
        "fig7",
        "Thread Time on V-Class (cycles / 1M instrs)",
        "hpv",
        metrics.cycles_per_million,
        "cycles_per_minstr",
        **kw,
    )


def fig8_vclass_dcache(runner: SweepRunner, **kw) -> FigureData:
    """Fig. 8: V-Class D-cache misses per 1M instrs vs process count."""
    return _sweep_fig(
        runner,
        "fig8",
        "Data Cache Misses on V-Class (per 1M instrs)",
        "hpv",
        metrics.dcache_misses_per_million,
        "dmiss_per_minstr",
        **kw,
    )


def fig9_vclass_latency(runner: SweepRunner, **kw) -> FigureData:
    """Fig. 9: V-Class total (un-overlapped) memory latency in seconds."""
    return _sweep_fig(
        runner,
        "fig9",
        "Memory Latency on V-Class (seconds, open-request counter)",
        "hpv",
        metrics.memory_latency_seconds,
        "latency_seconds",
        **kw,
    )


def fig10_context_switches(
    runner: SweepRunner, queries=PAPER_QUERIES, nprocs=NPROC_SWEEP
) -> FigureData:
    """Fig. 10: voluntary and involuntary context switches per 1M
    instructions on the V-Class."""
    fig = FigureData(
        "fig10",
        "Context Switches on V-Class (per 1M instrs)",
        ("query", "n_procs", "voluntary", "involuntary"),
    )
    for q in queries:
        for n in nprocs:
            res = runner.cell(q, "hpv", n)
            sw = metrics.switches_per_million(res.mean, res.machine)
            fig.rows.append(
                {
                    "query": q,
                    "n_procs": n,
                    "voluntary": sw["voluntary"],
                    "involuntary": sw["involuntary"],
                }
            )
    return fig


def class_breakdown(
    runner: SweepRunner, queries=PAPER_QUERIES, n_procs: int = 1
) -> FigureData:
    """Supplementary: misses by data class (the §3.3 taxonomy).

    Not a numbered figure in the paper, but the paper's entire Fig. 4
    analysis is argued through the record / index / metadata / private
    decomposition; this table makes the simulator's decomposition
    inspectable.
    """
    fig = FigureData(
        "class_breakdown",
        f"Coherent-level misses by data class ({n_procs} proc)",
        ("query", "platform", "record", "index", "meta", "lock", "private"),
    )
    for q in queries:
        for plat in PAPER_PLATFORMS:
            m = runner.cell(q, plat, n_procs).mean
            row = {"query": q, "platform": plat}
            row.update({k: m.coherent_by_class.get(k, 0) for k in
                        ("record", "index", "meta", "lock", "private")})
            fig.rows.append(row)
    return fig


#: Figure registry: id -> builder(runner, **kwargs).
FIGURES: Dict[str, Callable] = {
    "fig2": fig2_thread_time,
    "fig3": fig3_cpi,
    "fig4": fig4_dcache,
    "fig5": fig5_origin_thread_time,
    "fig6": fig6_origin_l2,
    "fig7": fig7_vclass_thread_time,
    "fig8": fig8_vclass_dcache,
    "fig9": fig9_vclass_latency,
    "fig10": fig10_context_switches,
}


#: Which (platforms, nprocs) slice of the matrix each figure reads.
_FIG_SLICE: Dict[str, tuple] = {
    "fig2": (PAPER_PLATFORMS, (1, 8)),
    "fig3": (PAPER_PLATFORMS, (1, 8)),
    "fig4": (PAPER_PLATFORMS, (1, 8)),
    "fig5": (("sgi",), NPROC_SWEEP),
    "fig6": (("sgi",), NPROC_SWEEP),
    "fig7": (("hpv",), NPROC_SWEEP),
    "fig8": (("hpv",), NPROC_SWEEP),
    "fig9": (("hpv",), NPROC_SWEEP),
    "fig10": (("hpv",), NPROC_SWEEP),
}


def cells_for(fig_ids: Sequence[str], queries=PAPER_QUERIES) -> List[CellKey]:
    """Union of sweep cells the given figures consume — the work list a
    :class:`~repro.core.parallel.ParallelSweepRunner` should prewarm
    before the (serial, cache-reading) figure builders run."""
    cells: List[CellKey] = []
    seen = set()
    for fig_id in fig_ids:
        if fig_id not in _FIG_SLICE:
            raise KeyError(f"unknown figure {fig_id!r}; available: {sorted(FIGURES)}")
        platforms, nprocs = _FIG_SLICE[fig_id]
        for q in queries:
            for p in platforms:
                for n in nprocs:
                    key = normalize_cell((q, p, n))
                    if key not in seen:
                        seen.add(key)
                        cells.append(key)
    return cells


def regenerate_figure(
    fig_id: str, runner: Optional[SweepRunner] = None, **kwargs
) -> FigureData:
    """Regenerate one paper figure (building a default runner if needed)."""
    if fig_id not in FIGURES:
        raise KeyError(f"unknown figure {fig_id!r}; available: {sorted(FIGURES)}")
    if runner is None:
        runner = SweepRunner()
    return FIGURES[fig_id](runner, **kwargs)


def regenerate_all(runner: Optional[SweepRunner] = None) -> Dict[str, FigureData]:
    """Regenerate every figure, sharing one sweep.

    The grid is prewarmed first so a parallel runner fans the cells out
    before the (serial, memo-reading) builders walk them.
    """
    if runner is None:
        runner = SweepRunner()
    runner.prewarm(cells_for(list(FIGURES)))
    return {fig_id: FIGURES[fig_id](runner) for fig_id in FIGURES}
