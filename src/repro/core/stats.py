"""Repetition statistics.

§2.3: "For each configuration, we perform the same test four times and
use the average values."  With a deterministic simulator, identical
repetitions are identical; variation comes from qgen parameter draws
(``param_mode='random'``).  This module summarizes repeated runs with
mean / standard deviation / a t-based confidence interval, so a user
reporting numbers can quote uncertainty like the original methodology
implied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..cpu.counters import CounterSnapshot
from .experiment import ExperimentResult

#: Two-sided 95% t critical values for 1..30 degrees of freedom.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t95(dof: int) -> float:
    """95% two-sided t critical value (normal approximation past 30)."""
    if dof < 1:
        raise ValueError("need at least 2 samples for a confidence interval")
    return _T95[dof - 1] if dof <= len(_T95) else 1.960


@dataclass(frozen=True)
class Summary:
    """Mean/dispersion of one metric across repetitions."""

    n: int
    mean: float
    stdev: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.4g} ± {self.ci95_half_width:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of raw samples."""
    n = len(values)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(values) / n
    if n == 1:
        return Summary(1, mean, 0.0, 0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(var)
    half = t95(n - 1) * stdev / math.sqrt(n)
    return Summary(n, mean, stdev, half)


def summarize_metric(
    result: ExperimentResult,
    metric: Callable[[CounterSnapshot], float],
) -> Summary:
    """Apply ``metric`` to each repetition's mean snapshot and summarize.

    Example::

        res = run_experiment(spec.with_(repetitions=4, param_mode="random"))
        s = summarize_metric(res, lambda m: m.cycles)
    """
    values: List[float] = [metric(run.mean) for run in result.runs]
    return summarize(values)
