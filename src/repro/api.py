"""Stable public facade — ``from repro.api import ...``.

The package grew layer by layer (``repro.core.experiment``,
``repro.core.parallel``, ``repro.core.sweep``, ``repro.obs``, ...) and
every example and downstream script used to reach into whichever module
happened to define what it needed.  This module is the supported import
surface instead: one curated, snapshot-tested ``__all__`` covering the
experiment runner, the sweep engines (serial, parallel, resilient), the
persistent cache and checkpoint types, and the observer-bus attach
helpers.  Internal modules stay importable for power users, but only
the names below are API — ``tests/test_api_surface.py`` pins the exact
list so the surface cannot drift silently.

>>> from repro.api import ExperimentSpec, run_experiment
>>> result = run_experiment(ExperimentSpec(query="Q6", platform="hpv"))
>>> result.mean.cycles > 0
True
"""

from ._version import __version__
from .config import DEFAULT_SIM, TEST_SIM, SimConfig
from .core import metrics
from .core.executors import (
    LocalPoolExecutor,
    MultiHostExecutor,
    SubprocessHostExecutor,
    SweepExecutor,
    select_executor,
)
from .core.experiment import ExperimentResult, ExperimentSpec, run_experiment
from .core.figures import FIGURES, regenerate_figure
from .core.parallel import ParallelSweepRunner
from .core.report import render_table
from .core.resilience import (
    CellFailure,
    CheckpointManifest,
    FaultPlan,
    RetryPolicy,
    SweepReport,
)
from .core.resultcache import ResultCache
from .core.sweep import NPROC_SWEEP, SweepRunner, figure_grid_cells
from .mem.machine import MachineConfig, hp_v_class, platform, sgi_origin_2000
from .mem.registry import (
    REGISTRY,
    MachineRegistry,
    load_machine_file,
    save_machine_file,
    validate_machine,
)
from .obs import (
    ChromeTraceExporter,
    PhaseProfiler,
    SweepEventJournal,
    SweepEventRecorder,
    observed_run,
)
from .service import (
    ENVELOPE_KINDS,
    SCHEMA_V1,
    EnvelopeError,
    JobSpec,
    ServiceError,
    SweepClient,
    error_envelope,
    make_envelope,
    serve,
    validate_envelope,
)
from .tpch.datagen import TPCHConfig
from .trace.capture import capture_workload, replay_workload
from .trace.store import TraceStore

#: The versioned machine contract every ``--json`` output and HTTP
#: response follows (see :mod:`repro.service.envelope`).
API_VERSION = SCHEMA_V1

__all__ = [
    "__version__",
    # configuration
    "SimConfig",
    "DEFAULT_SIM",
    "TEST_SIM",
    "TPCHConfig",
    # one experiment cell
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    # sweeps: serial, parallel/resilient, persistence
    "SweepRunner",
    "ParallelSweepRunner",
    # execution backends (serial / local pool / multi-host)
    "select_executor",
    "SweepExecutor",
    "LocalPoolExecutor",
    "SubprocessHostExecutor",
    "MultiHostExecutor",
    "ResultCache",
    "RetryPolicy",
    "FaultPlan",
    "CheckpointManifest",
    "SweepReport",
    "CellFailure",
    "figure_grid_cells",
    "NPROC_SWEEP",
    # workload trace capture/replay
    "TraceStore",
    "capture_workload",
    "replay_workload",
    # figures and reporting
    "FIGURES",
    "regenerate_figure",
    "render_table",
    "metrics",
    # machine models: registry, loader, built-ins
    "platform",
    "MachineConfig",
    "MachineRegistry",
    "REGISTRY",
    "load_machine_file",
    "save_machine_file",
    "validate_machine",
    "hp_v_class",
    "sgi_origin_2000",
    # observer-bus attach helpers
    "observed_run",
    "PhaseProfiler",
    "ChromeTraceExporter",
    "SweepEventRecorder",
    "SweepEventJournal",
    # sweep-as-a-service: daemon, client, and the repro/v1 envelope
    "API_VERSION",
    "SCHEMA_V1",
    "ENVELOPE_KINDS",
    "EnvelopeError",
    "make_envelope",
    "error_envelope",
    "validate_envelope",
    "serve",
    "JobSpec",
    "SweepClient",
    "ServiceError",
]
